//! Corruption bookkeeping: the CorruptDataTable range set, the corruption
//! marker that carries a failed audit across the deliberate crash, and the
//! online cache-recovery repair (paper §4.2's cache-recovery model).

use crate::att::TxnStatus;
use crate::ckpt;
use crate::db::Db;
use bytes::{Buf, BufMut, BytesMut};
use dali_common::{DaliError, DbAddr, Lsn, PageId, Result};
use dali_wal::record::LogRecord;
use dali_wal::SystemLog;
use std::collections::BTreeMap;
use std::path::Path;

/// A set of byte ranges with merge-on-insert and overlap queries — the
/// paper's *CorruptDataTable* (§4.3).
#[derive(Clone, Debug, Default)]
pub struct RangeSet {
    /// start -> end (exclusive), non-overlapping, non-adjacent.
    map: BTreeMap<usize, usize>,
}

impl RangeSet {
    /// Empty set.
    pub fn new() -> RangeSet {
        RangeSet::default()
    }

    /// Insert `[start, start+len)`, merging with overlapping or adjacent
    /// ranges.
    pub fn insert(&mut self, addr: DbAddr, len: usize) {
        if len == 0 {
            return;
        }
        let mut start = addr.0;
        let mut end = addr.0 + len;
        // Absorb the predecessor if it touches us.
        if let Some((&s, &e)) = self.map.range(..=start).next_back() {
            if e >= start {
                start = s;
                end = end.max(e);
                self.map.remove(&s);
            }
        }
        // Absorb successors.
        loop {
            let next = self.map.range(start..).next().map(|(&s, &e)| (s, e));
            match next {
                Some((s, e)) if s <= end => {
                    end = end.max(e);
                    self.map.remove(&s);
                }
                _ => break,
            }
        }
        self.map.insert(start, end);
    }

    /// Does `[start, start+len)` overlap any range in the set?
    pub fn overlaps(&self, addr: DbAddr, len: usize) -> bool {
        if len == 0 {
            return false;
        }
        let start = addr.0;
        let end = start + len;
        if let Some((_, &e)) = self.map.range(..=start).next_back() {
            if e > start {
                return true;
            }
        }
        self.map.range(start..end).next().is_some()
    }

    /// Number of disjoint ranges.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The ranges as `(addr, len)` pairs.
    pub fn ranges(&self) -> Vec<(DbAddr, usize)> {
        self.map.iter().map(|(&s, &e)| (DbAddr(s), e - s)).collect()
    }

    /// Total bytes covered.
    pub fn covered_bytes(&self) -> usize {
        self.map.iter().map(|(&s, &e)| e - s).sum()
    }
}

const MARKER_MAGIC: u32 = 0xDA11_BAD1;

/// Persisted note of a failed audit: written before the deliberate crash,
/// consumed by corruption recovery at the next open (paper §4.3: "we
/// simply note the region(s) failing the audit, and cause the database to
/// crash").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CorruptionMarker {
    /// `Audit_SN`: LSN of the begin record of the last *clean* audit.
    /// Recovery conservatively assumes the corruption happened right
    /// after this point.
    pub audit_sn: Option<Lsn>,
    /// Regions the failing audit flagged.
    pub ranges: Vec<(DbAddr, usize)>,
}

impl CorruptionMarker {
    fn encode(&self) -> Vec<u8> {
        let mut buf = BytesMut::new();
        buf.put_u32_le(MARKER_MAGIC);
        buf.put_u64_le(self.audit_sn.map_or(u64::MAX, |l| l.0));
        buf.put_u32_le(self.ranges.len() as u32);
        for (a, l) in &self.ranges {
            buf.put_u64_le(a.0 as u64);
            buf.put_u64_le(*l as u64);
        }
        let sum = dali_wal::record::checksum(&buf);
        buf.put_u32_le(sum);
        buf.to_vec()
    }

    fn decode(bytes: &[u8]) -> Result<CorruptionMarker> {
        if bytes.len() < 20 {
            return Err(DaliError::RecoveryFailed("marker truncated".into()));
        }
        let (body, sum) = bytes.split_at(bytes.len() - 4);
        if dali_wal::record::checksum(body) != u32::from_le_bytes(sum.try_into().unwrap()) {
            return Err(DaliError::RecoveryFailed("marker checksum mismatch".into()));
        }
        let mut buf = body;
        if buf.get_u32_le() != MARKER_MAGIC {
            return Err(DaliError::RecoveryFailed("marker bad magic".into()));
        }
        let audit_sn = match buf.get_u64_le() {
            u64::MAX => None,
            v => Some(Lsn(v)),
        };
        let n = buf.get_u32_le() as usize;
        if buf.len() < n * 16 {
            return Err(DaliError::RecoveryFailed("marker ranges truncated".into()));
        }
        let mut ranges = Vec::with_capacity(n);
        for _ in 0..n {
            let a = buf.get_u64_le() as usize;
            let l = buf.get_u64_le() as usize;
            ranges.push((DbAddr(a), l));
        }
        Ok(CorruptionMarker { audit_sn, ranges })
    }
}

/// Write the corruption marker for `dir` (durably: the marker is what
/// tells a restart to run corruption recovery instead of plain restart
/// recovery, so it must survive a crash that follows the report — see
/// [`crate::ckpt`]'s `atomic_write` on why the rename alone is not
/// enough).
pub fn write_marker(dir: &Path, marker: &CorruptionMarker) -> Result<()> {
    crate::ckpt::atomic_write(&Db::marker_path(dir), &marker.encode())
}

/// Read the corruption marker, if present.
pub fn read_marker(dir: &Path) -> Result<Option<CorruptionMarker>> {
    match std::fs::read(Db::marker_path(dir)) {
        Ok(bytes) => Ok(Some(CorruptionMarker::decode(&bytes)?)),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e.into()),
    }
}

/// Remove the corruption marker (recovery completed). The removal is
/// fsynced like the write: a resurfacing marker would send the next
/// restart back into corruption recovery it already finished (harmless
/// but wasteful), while losing one is only possible before recovery
/// declared itself done.
pub fn clear_marker(dir: &Path) -> Result<()> {
    match std::fs::remove_file(Db::marker_path(dir)) {
        Ok(()) => crate::ckpt::sync_parent_dir(&Db::marker_path(dir)),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(e.into()),
    }
}

/// Note detected corruption and bring the database down for recovery:
/// flush the log tail (in Dali the tail lives in shared memory and
/// survives the crash — flushing models that), persist the marker, and
/// poison the engine.
pub fn report_corruption(db: &Db, ranges: &[(DbAddr, usize)]) -> Result<()> {
    let marker = CorruptionMarker {
        audit_sn: *db.last_clean_audit.lock(),
        ranges: ranges.to_vec(),
    };
    db.syslog.flush(false)?;
    write_marker(&db.config.dir, &marker)?;
    db.poison();
    Ok(())
}

/// Online cache recovery (paper §4.2 cache-recovery model): repair
/// directly corrupted regions in place, without a restart, assuming no
/// indirect corruption (valid when every checkpoint is certified and the
/// corruption was caught by a precheck or audit before any transaction
/// read it).
///
/// Active transactions with updates on the affected pages cannot be
/// disentangled from the on-disk state cheaply, so every active
/// transaction is rolled back first; then the affected pages are rebuilt
/// from the certified checkpoint plus a physical-redo replay of the
/// stable log, and the region codewords are recomputed.
pub fn cache_repair(db: &std::sync::Arc<Db>, ranges: &[(DbAddr, usize)]) -> Result<usize> {
    db.check_alive()?;
    let _q = db.quiesce.write();

    // Roll back every active transaction (their compensations are logged).
    for id in db.att.ids() {
        if let Some(state) = db.att.get(id) {
            let mut st = state.lock();
            if st.status != TxnStatus::Active {
                continue;
            }
            crate::txn::rollback_txn(db, &mut st, id)?;
            let mut batch = st.redo.drain();
            batch.push(LogRecord::TxnAbort { txn: id });
            db.syslog.append_batch(&batch);
            st.status = TxnStatus::Aborted;
            for rec in std::mem::take(&mut st.deferred_frees) {
                if let Ok(h) = db.heap(rec.table) {
                    h.release(rec.slot);
                }
            }
            drop(st);
            db.locks.unlock_all(id);
            db.att.remove(id);
        }
    }
    db.syslog.flush(false)?;

    // Pages to repair.
    let mut pages: Vec<PageId> = ranges
        .iter()
        .flat_map(|&(a, l)| db.image.pages_overlapping(a, l))
        .collect();
    pages.sort_unstable();
    pages.dedup();

    // Rebuild from the certified checkpoint...
    let (image_idx, _serial) = ckpt::read_anchor(&db.config.dir)?;
    let meta = ckpt::read_meta(&db.config.dir, image_idx)?;
    let ckpt_pages = ckpt::read_ckpt_pages(&db.config.dir, image_idx, db.config.page_size, &pages)?;
    for (p, data) in &ckpt_pages {
        db.image.write_page(*p, data)?;
    }

    // ...replay committed history onto them (physical redo is positional
    // and idempotent, so replaying every record touching these pages
    // repeats history exactly)...
    let records =
        SystemLog::scan_stable_with(db.syslog.path(), meta.ck_end, db.config.codeword_algebra)?;
    let mut replayed = 0usize;
    for (_lsn, rec) in records {
        if let LogRecord::PhysicalRedo { addr, data, .. } = rec {
            let touched = db.image.pages_overlapping(addr, data.len());
            if touched.iter().any(|p| pages.binary_search(p).is_ok()) {
                db.image.write(addr, &data)?;
                replayed += 1;
            }
        }
    }

    // ...and resynchronize the maintained codewords of the repaired pages.
    if db.config.scheme.maintains_codewords() {
        // Queued deferred deltas for the repaired regions are superseded;
        // apply the whole queue first so unrelated regions stay correct,
        // then recompute the repaired ones from the image.
        db.prot.drain_deferred();
        let geom = db.prot.geometry();
        for &p in &pages {
            let base = p.base(db.config.page_size);
            let (first, last) = geom.region_span(base, db.config.page_size);
            for r in first..=last {
                db.prot.table().recompute_region(&db.image, geom, r)?;
            }
        }
        // The page rewrites above bypassed parity maintenance, so the
        // stripe groups covering the repaired span are stale; rebuild
        // them from the image so the next in-place repair can trust them.
        if let Some(stripe) = db.prot.parity() {
            let mut groups: Vec<_> = pages
                .iter()
                .flat_map(|&p| {
                    let base = p.base(db.config.page_size);
                    let (first, last) = geom.region_span(base, db.config.page_size);
                    stripe.group_of(first)..=stripe.group_of(last)
                })
                .collect();
            groups.sort_unstable();
            groups.dedup();
            for g in groups {
                db.prot.resync_parity_group(&db.image, g)?;
            }
        }
    }

    // Repaired pages differ from both checkpoint images now.
    db.syslog.dirty().note_all(pages.iter().copied());
    Ok(replayed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rangeset_insert_and_overlap() {
        let mut s = RangeSet::new();
        s.insert(DbAddr(100), 50);
        assert!(s.overlaps(DbAddr(100), 1));
        assert!(s.overlaps(DbAddr(149), 1));
        assert!(!s.overlaps(DbAddr(150), 10));
        assert!(!s.overlaps(DbAddr(0), 100));
        assert!(s.overlaps(DbAddr(0), 101));
        assert!(s.overlaps(DbAddr(90), 1000));
    }

    #[test]
    fn rangeset_merges_overlapping() {
        let mut s = RangeSet::new();
        s.insert(DbAddr(100), 50);
        s.insert(DbAddr(120), 100);
        assert_eq!(s.len(), 1);
        assert_eq!(s.ranges(), vec![(DbAddr(100), 120)]);
    }

    #[test]
    fn rangeset_merges_adjacent() {
        let mut s = RangeSet::new();
        s.insert(DbAddr(0), 10);
        s.insert(DbAddr(10), 10);
        assert_eq!(s.len(), 1);
        assert_eq!(s.covered_bytes(), 20);
    }

    #[test]
    fn rangeset_keeps_disjoint() {
        let mut s = RangeSet::new();
        s.insert(DbAddr(0), 10);
        s.insert(DbAddr(100), 10);
        s.insert(DbAddr(50), 10);
        assert_eq!(s.len(), 3);
        assert_eq!(s.covered_bytes(), 30);
    }

    #[test]
    fn rangeset_absorbs_multiple() {
        let mut s = RangeSet::new();
        s.insert(DbAddr(0), 10);
        s.insert(DbAddr(20), 10);
        s.insert(DbAddr(40), 10);
        s.insert(DbAddr(5), 40); // swallows all three
        assert_eq!(s.len(), 1);
        assert_eq!(s.ranges(), vec![(DbAddr(0), 50)]);
    }

    #[test]
    fn rangeset_zero_len_noop() {
        let mut s = RangeSet::new();
        s.insert(DbAddr(5), 0);
        assert!(s.is_empty());
        assert!(!s.overlaps(DbAddr(5), 0));
    }

    #[test]
    fn marker_round_trip() {
        let dir = std::env::temp_dir().join(format!("dali-marker-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let _ = clear_marker(&dir);
        assert_eq!(read_marker(&dir).unwrap(), None);
        let m = CorruptionMarker {
            audit_sn: Some(Lsn(777)),
            ranges: vec![(DbAddr(64), 64), (DbAddr(4096), 128)],
        };
        write_marker(&dir, &m).unwrap();
        assert_eq!(read_marker(&dir).unwrap(), Some(m));
        clear_marker(&dir).unwrap();
        assert_eq!(read_marker(&dir).unwrap(), None);
        clear_marker(&dir).unwrap(); // idempotent
    }

    #[test]
    fn marker_detects_tampering() {
        let dir = std::env::temp_dir().join(format!("dali-marker2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let m = CorruptionMarker {
            audit_sn: None,
            ranges: vec![(DbAddr(0), 64)],
        };
        write_marker(&dir, &m).unwrap();
        let p = Db::marker_path(&dir);
        let mut bytes = std::fs::read(&p).unwrap();
        bytes[5] ^= 1;
        std::fs::write(&p, bytes).unwrap();
        assert!(read_marker(&dir).is_err());
    }
}
