//! Restart recovery (paper §2.1) and delete-transaction corruption
//! recovery (paper §4.3).
//!
//! Restart recovery loads the certified checkpoint image, replays the
//! system log from `CK_end` (repeating history physically), and rolls
//! back incomplete transactions level by level using logical undo from the
//! checkpointed ATT and operation commit records.
//!
//! When a corruption marker is present (a failed audit brought the system
//! down) — or unconditionally under the CW ReadLog scheme — the redo scan
//! runs in *corruption mode*, maintaining the `CorruptTransTable` and
//! `CorruptDataTable` of §4.3:
//!
//! * a read or write record touching corrupt data puts its transaction in
//!   the CorruptTransTable (with region codewords in read records, the
//!   test is instead a codeword comparison against the recovering image —
//!   the view-consistent variant);
//! * writes of corrupt transactions are suppressed and their target
//!   ranges become corrupt;
//! * a begin-operation record of a clean transaction that conflicts with
//!   an operation in a corrupt transaction's undo log quarantines that
//!   transaction too (so the corrupt transaction can still be rolled
//!   back);
//! * logical records of corrupt transactions are ignored, leaving them
//!   incomplete so the undo phase rolls back their pre-corruption prefix;
//! * when the scan passes `Audit_SN` (the last clean audit), the failing
//!   audit's regions join the CorruptDataTable.
//!
//! Recovery ends with the mandatory certified checkpoint; only then is
//! the corruption marker cleared, so a crash during recovery simply
//! repeats it.

use crate::att::{Att, TxnState};
use crate::catalog::{Catalog, HeapMeta};
use crate::ckpt;
use crate::corruption::{self, CorruptionMarker, RangeSet};
use crate::db::{CkptState, Db, EngineStats};
use crate::heap::HeapRuntime;
use crate::lock::LockManager;
use crate::txn::rollback_direct;
use dali_codeword::CodewordProtection;
use dali_common::align::split_by_chunks;
use dali_common::{CodewordAlgebraKind, DaliConfig, DaliError, DbAddr, Lsn, Result, TxnId};
use dali_mem::{DbImage, PageProtector};
use dali_wal::record::LogRecord;
use dali_wal::SystemLog;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Physical redo buffered per (transaction, operation) until the
/// operation's commit record arrives.
type PendingWrites = HashMap<(TxnId, dali_common::OpSeq), Vec<(DbAddr, Vec<u8>)>>;

/// Released physical redo, partitioned by `page % threads` for the
/// parallel apply phase of restart recovery.
///
/// The serial scan pushes writes here in the order they are released
/// (operation-commit order, which is history order). A write spanning
/// several pages is split at page boundaries so every buffered chunk
/// lands in the bucket that owns its page. Two facts make the parallel
/// apply byte-identical to a serial replay:
///
/// * all writes to one page sit in one bucket, in release order, so
///   same-page history replays in order;
/// * different buckets own disjoint page sets, so their writes touch
///   disjoint bytes and commute.
///
/// Corruption-mode recovery never uses this path: its scan reads the
/// image mid-stream (`codewords_match`), so redo must stay inline.
struct RedoBuckets {
    page_size: usize,
    buckets: Vec<Vec<(DbAddr, Vec<u8>)>>,
}

impl RedoBuckets {
    fn new(threads: usize, page_size: usize) -> RedoBuckets {
        RedoBuckets {
            page_size,
            buckets: vec![Vec::new(); threads.max(1)],
        }
    }

    fn push(&mut self, addr: DbAddr, data: Vec<u8>) {
        let n = self.buckets.len();
        let first = addr.0 / self.page_size;
        let last = if data.is_empty() {
            first
        } else {
            (addr.0 + data.len() - 1) / self.page_size
        };
        if n == 1 || first == last {
            self.buckets[first % n].push((addr, data));
            return;
        }
        for (page, start, len) in split_by_chunks(addr.0, data.len(), self.page_size) {
            let off = start - addr.0;
            self.buckets[page % n].push((DbAddr(start), data[off..off + len].to_vec()));
        }
    }

    /// Apply every bucket to `image` on a scoped worker pool. Returns the
    /// worker count actually used and the wall-clock nanoseconds of the
    /// apply phase.
    fn apply(self, image: &DbImage) -> Result<(usize, u64)> {
        let start = std::time::Instant::now();
        let live: Vec<&Vec<(DbAddr, Vec<u8>)>> =
            self.buckets.iter().filter(|b| !b.is_empty()).collect();
        if self.buckets.len() == 1 || live.len() <= 1 {
            for bucket in &live {
                for (addr, data) in bucket.iter() {
                    image.write(*addr, data)?;
                }
            }
            return Ok((1, start.elapsed().as_nanos() as u64));
        }
        let used = live.len();
        std::thread::scope(|s| -> Result<()> {
            let handles: Vec<_> = live
                .into_iter()
                .map(|bucket| {
                    s.spawn(move || -> Result<()> {
                        for (addr, data) in bucket.iter() {
                            image.write(*addr, data)?;
                        }
                        Ok(())
                    })
                })
                .collect();
            for h in handles {
                h.join()
                    .map_err(|_| DaliError::RecoveryFailed("redo worker panicked".into()))??;
            }
            Ok(())
        })?;
        Ok((used, start.elapsed().as_nanos() as u64))
    }
}

/// How the database was brought up.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RecoveryMode {
    /// Fresh database, nothing to recover.
    Fresh,
    /// Normal restart recovery (redo + undo).
    Normal,
    /// A corruption marker was present but the scheme keeps no read log:
    /// rebuild from the certified checkpoint and clean redo (the
    /// cache-recovery model — direct corruption vanishes, indirect
    /// corruption is assumed absent).
    CacheRecovery,
    /// Delete-transaction corruption recovery ran (§4.3).
    DeleteTxn,
    /// Prior-state recovery (§4.1's second model): the database was
    /// returned to a transaction-consistent state at a chosen log
    /// position, discarding everything after it.
    PriorState,
}

/// What recovery did.
#[derive(Clone, Debug)]
pub struct RecoveryOutcome {
    pub mode: RecoveryMode,
    /// Transactions deleted from history (the CorruptTransTable). Returned
    /// to the user for manual compensation (§4.1).
    pub deleted_txns: Vec<TxnId>,
    /// Clean transactions that were simply incomplete at the crash and
    /// rolled back.
    pub rolled_back_txns: Vec<TxnId>,
    /// Final contents of the CorruptDataTable.
    pub corrupt_ranges: Vec<(DbAddr, usize)>,
    /// Log records processed by the redo scan.
    pub records_scanned: usize,
}

impl RecoveryOutcome {
    fn fresh() -> RecoveryOutcome {
        RecoveryOutcome {
            mode: RecoveryMode::Fresh,
            deleted_txns: Vec::new(),
            rolled_back_txns: Vec::new(),
            corrupt_ranges: Vec::new(),
            records_scanned: 0,
        }
    }
}

/// Assemble a `Db` from its parts (shared by create and restart).
#[allow(clippy::too_many_arguments)]
pub(crate) fn build_db(
    config: DaliConfig,
    image: Arc<DbImage>,
    syslog: SystemLog,
    catalog: Catalog,
    ckpt_state: CkptState,
    next_txn: u64,
    next_audit: u64,
    last_clean_audit: Option<Lsn>,
) -> Result<Arc<Db>> {
    let mut prot = CodewordProtection::with_config(
        &image,
        config.scheme,
        config.region_size,
        config.regions_per_latch,
        dali_codeword::DeferredConfig {
            shards: config.resolved_deferred_shards(),
            watermark: config.deferred_shard_watermark,
        },
        config.resolved_audit_threads(),
        config.codeword_algebra,
    )?;
    prot.set_latch_run(config.resolved_audit_latch_run());
    prot.enable_parity(
        &image,
        config.resolved_parity_group_size(),
        config.resolved_deferred_shards(),
        config.deferred_shard_watermark,
    )?;
    let protector = PageProtector::new(Arc::clone(&image), config.mprotect_real);
    let heaps: Vec<Arc<HeapRuntime>> = catalog
        .iter()
        .map(|m| Arc::new(HeapRuntime::new(m.clone())))
        .collect();
    let locks = LockManager::with_config(
        config.lock_timeout,
        config.resolved_lock_shards(),
        config.deadlock_detect_interval,
    );
    let db = Arc::new(Db {
        config,
        image,
        prot,
        protector,
        syslog,
        att: Att::new(),
        locks,
        catalog: RwLock::new(catalog),
        heaps: RwLock::new(heaps),
        quiesce: RwLock::new(()),
        ckpt_state: Mutex::new(ckpt_state),
        txn_counter: AtomicU64::new(next_txn),
        audit_counter: AtomicU64::new(next_audit),
        last_clean_audit: Mutex::new(last_clean_audit),
        crashed: AtomicBool::new(false),
        stats: EngineStats::default(),
    });
    for h in db.heaps.read().iter() {
        h.rebuild_from_image(&db.image)?;
    }
    db.refresh_log_gauges()?;
    crate::maintenance::spawn_drainer(&db);
    Ok(db)
}

/// Create a fresh database in `config.dir`.
pub fn create(config: DaliConfig) -> Result<(Arc<Db>, RecoveryOutcome)> {
    config.validate().map_err(DaliError::InvalidArg)?;
    std::fs::create_dir_all(&config.dir)?;
    let image = Arc::new(DbImage::new(config.db_pages, config.page_size)?);
    let syslog = SystemLog::create_with(
        Db::log_path(&config.dir),
        config.page_size,
        config.codeword_algebra,
        config.log_segment_bytes,
    )?;
    // The whole (zeroed) image is dirty with respect to both checkpoint
    // images.
    syslog.dirty().note_range(config.db_pages);
    let db = build_db(
        config,
        image,
        syslog,
        Catalog::new(),
        ckpt::initial_state(),
        0,
        0,
        None,
    )?;
    // Initial certified checkpoint so a crash right after create recovers.
    ckpt::checkpoint(&db)?;
    if db.config.scheme.uses_mprotect() {
        db.protector.enable()?;
    }
    Ok((db, RecoveryOutcome::fresh()))
}

/// Open an existing database: restart recovery (normal or corruption
/// mode).
pub fn restart(config: DaliConfig) -> Result<(Arc<Db>, RecoveryOutcome)> {
    config.validate().map_err(DaliError::InvalidArg)?;
    let dir = config.dir.clone();
    let (image_idx, serial) = ckpt::read_anchor(&dir)?;
    let meta = ckpt::read_meta(&dir, image_idx)?;
    check_ckpt_algebra(&meta, config.codeword_algebra)?;
    check_ckpt_parity(&meta, config.resolved_parity_group_size())?;
    let marker = corruption::read_marker(&dir)?;

    // Decide the mode. The CW ReadLog scheme runs corruption recovery on
    // every restart (§4.3: codewords in read records detect corruption
    // that occurred after the last audit but before a true crash).
    let mode = match (&marker, config.scheme) {
        (Some(_), s) if s.supports_delete_txn_recovery() => RecoveryMode::DeleteTxn,
        (None, s) if s.logs_read_codewords() => RecoveryMode::DeleteTxn,
        (Some(_), _) => RecoveryMode::CacheRecovery,
        (None, _) => RecoveryMode::Normal,
    };

    // ---- load the certified checkpoint ----
    let image = Arc::new(DbImage::new(config.db_pages, config.page_size)?);
    let bytes = ckpt::load_image_bytes(&dir, image_idx, config.db_bytes())?;
    image.arena().write(0, &bytes)?;
    drop(bytes);
    let mut catalog = meta.catalog.clone();

    // Reconstructed ATT, seeded from the checkpointed one.
    let mut att: HashMap<TxnId, TxnState> = Att::decode_for_recovery(&meta.att_blob)?
        .into_iter()
        .map(|s| (s.id, s))
        .collect();

    // ---- redo phase ----
    let corruption_mode = mode == RecoveryMode::DeleteTxn;
    let use_codewords = config.scheme.logs_read_codewords();
    let mut ctt: std::collections::HashSet<TxnId> = std::collections::HashSet::new();
    let mut cdt = RangeSet::new();
    // Byte ranges targeted by operations in corrupt transactions' undo
    // logs: their rollback will change these bytes, so any *access* to
    // them after the owning transaction was tainted would observe values
    // the delete history does not contain. The paper quarantines
    // conflicting begin-operation records (§4.3); tracking the ranges
    // also catches plain reads and physical writes, which our engine does
    // not wrap in operations.
    let mut ctt_undo_ranges = RangeSet::new();
    let region_size = config.region_size;
    let algebra = config.codeword_algebra;

    // Where does the failing audit's range list enter the CDT? At
    // Audit_SN if it is inside the scan, otherwise right at the start.
    let audit_sn = marker.as_ref().and_then(|m| m.audit_sn);
    let mut marker_ranges_pending = corruption_mode && !use_codewords;
    if marker_ranges_pending && audit_sn.is_none_or(|sn| sn <= meta.ck_end) {
        seed_marker_ranges(&mut cdt, &marker);
        marker_ranges_pending = false;
    }

    let records =
        SystemLog::scan_stable_with(Db::log_path(&dir), meta.ck_end, config.codeword_algebra)?;
    let records_scanned = records.len();
    let mut max_txn_seen = 0u64;
    let mut max_audit_seen = 0u64;
    // Physical redo is buffered per operation and applied when the
    // operation's commit record arrives. Operation commit migrates its
    // records to the system log as one batch, so in an intact log every
    // physical record is followed by its OpCommit; the exception is a
    // *torn final flush*, whose trailing partial batch must be discarded
    // — applying it would write bytes that no undo information covers.
    // (Compensation records of an abort are terminated by the TxnAbort
    // record of the same batch instead.)
    let mut pending_writes: PendingWrites = HashMap::new();
    // Normal-mode redo is two-phase: the serial scan classifies frames
    // and buckets released writes by page; a scoped worker pool applies
    // them afterwards. Corruption mode reads the image mid-scan, so its
    // redo stays inline and serial.
    let redo_threads = if corruption_mode {
        1
    } else {
        config.resolved_redo_threads()
    };
    let mut redo = RedoBuckets::new(redo_threads, config.page_size);

    // Taint a transaction: freeze its undo log (subsequent logical records
    // are ignored) and protect its undo targets from later interference.
    let taint = |txn: TxnId,
                 ctt: &mut std::collections::HashSet<TxnId>,
                 ctt_undo_ranges: &mut RangeSet,
                 att: &HashMap<TxnId, TxnState>,
                 catalog: &Catalog| {
        if ctt.insert(txn) {
            if let Some(st) = att.get(&txn) {
                for entry in st.undo.iter() {
                    match &entry.kind {
                        dali_wal::UndoKind::Logical(u) => {
                            let target = u.target();
                            if let Ok(meta) = catalog.get(target.table) {
                                ctt_undo_ranges.insert(meta.slot_addr(target.slot), meta.rec_size);
                            }
                        }
                        dali_wal::UndoKind::Physical { addr, before, .. } => {
                            // Physical undo (an operation in flight at the
                            // checkpoint) restores these exact bytes.
                            ctt_undo_ranges.insert(*addr, before.len());
                        }
                    }
                }
            }
        }
    };

    for (lsn, rec) in records {
        if let Some(t) = rec.txn() {
            max_txn_seen = max_txn_seen.max(t.0 + 1);
        }
        match rec {
            LogRecord::TxnBegin { txn } => {
                att.entry(txn)
                    .or_insert_with(|| TxnState::new_for_recovery(txn));
            }
            LogRecord::OpBegin { txn, rec, .. } => {
                att.entry(txn)
                    .or_insert_with(|| TxnState::new_for_recovery(txn));
                if corruption_mode && !ctt.contains(&txn) {
                    // §4.3: quarantine transactions whose new operation
                    // conflicts with an operation in a corrupt
                    // transaction's undo log.
                    let conflicts = ctt.iter().any(|ct| {
                        att.get(ct)
                            .map(|s| s.undo.logical_targets().any(|t| t == rec))
                            .unwrap_or(false)
                    });
                    if conflicts {
                        taint(txn, &mut ctt, &mut ctt_undo_ranges, &att, &catalog);
                    }
                }
            }
            LogRecord::PhysicalRedo {
                txn,
                op,
                addr,
                data,
            } => {
                if corruption_mode {
                    if ctt.contains(&txn) {
                        // Suppress the write; what it would have written is
                        // now (conservatively) corrupt data.
                        cdt.insert(addr, data.len());
                        continue;
                    }
                    if (!use_codewords && cdt.overlaps(addr, data.len()))
                        || ctt_undo_ranges.overlaps(addr, data.len())
                    {
                        // Write record of a transaction touching corrupt
                        // data (or data a corrupt transaction's rollback
                        // will restore): the transaction is corrupt and
                        // the write is suppressed.
                        taint(txn, &mut ctt, &mut ctt_undo_ranges, &att, &catalog);
                        cdt.insert(addr, data.len());
                        continue;
                    }
                }
                pending_writes
                    .entry((txn, op))
                    .or_default()
                    .push((addr, data));
            }
            LogRecord::ReadLog {
                txn,
                addr,
                len,
                codewords,
            } => {
                if corruption_mode && !ctt.contains(&txn) {
                    let tainted = if !codewords.is_empty() {
                        !codewords_match(
                            &image,
                            algebra,
                            region_size,
                            addr,
                            len as usize,
                            &codewords,
                        )?
                    } else {
                        cdt.overlaps(addr, len as usize)
                    };
                    // A read of data that a corrupt transaction's rollback
                    // will restore observes a value absent from the delete
                    // history — the reader must be deleted too, even under
                    // the codeword variant (the recovering image at this
                    // scan position still matches what the reader saw; the
                    // divergence only appears at the undo phase).
                    if tainted || ctt_undo_ranges.overlaps(addr, len as usize) {
                        taint(txn, &mut ctt, &mut ctt_undo_ranges, &att, &catalog);
                    }
                }
            }
            LogRecord::OpCommit { txn, op, undo } => {
                if corruption_mode && ctt.contains(&txn) {
                    pending_writes.remove(&(txn, op));
                    continue; // logical records of corrupt txns are ignored
                }
                // The operation committed: its buffered physical writes
                // are covered by the logical undo below — release them.
                if let Some(writes) = pending_writes.remove(&(txn, op)) {
                    for (addr, data) in writes {
                        if corruption_mode {
                            image.write(addr, &data)?;
                        } else {
                            redo.push(addr, data);
                        }
                    }
                }
                let st = att
                    .entry(txn)
                    .or_insert_with(|| TxnState::new_for_recovery(txn));
                st.undo.commit_op(op, undo);
                st.next_op = st.next_op.max(op.0 + 1);
            }
            LogRecord::TxnCommit { txn } | LogRecord::TxnAbort { txn } => {
                if corruption_mode && ctt.contains(&txn) {
                    pending_writes.retain(|(t, _), _| *t != txn);
                    continue; // stays incomplete; undone in the undo phase
                }
                // An abort's compensation records are terminated by the
                // TxnAbort record of the same batch: apply them now (in
                // op, then insertion order — compensations of one rollback
                // share an op only with themselves).
                let mut keys: Vec<_> = pending_writes
                    .keys()
                    .filter(|(t, _)| *t == txn)
                    .copied()
                    .collect();
                keys.sort_unstable_by_key(|(_, op)| op.0);
                for key in keys {
                    if let Some(writes) = pending_writes.remove(&key) {
                        for (addr, data) in writes {
                            if corruption_mode {
                                image.write(addr, &data)?;
                            } else {
                                redo.push(addr, data);
                            }
                        }
                    }
                }
                att.remove(&txn);
            }
            LogRecord::AuditBegin { audit_id } => {
                max_audit_seen = max_audit_seen.max(audit_id + 1);
                if marker_ranges_pending && audit_sn == Some(lsn) {
                    seed_marker_ranges(&mut cdt, &marker);
                    marker_ranges_pending = false;
                }
            }
            LogRecord::AuditEnd { .. } | LogRecord::CkptComplete { .. } => {}
            LogRecord::CreateTable {
                table,
                name,
                rec_size,
                capacity,
                bitmap_base,
                data_base,
            } => {
                catalog.register(replayed_meta(
                    table,
                    name,
                    rec_size,
                    capacity,
                    bitmap_base,
                    data_base,
                    config.page_size,
                )?)?;
            }
        }
    }
    // If Audit_SN was never passed (e.g. its record sat in a lost tail),
    // seed the ranges anyway: better to over-taint than to miss.
    if marker_ranges_pending {
        seed_marker_ranges(&mut cdt, &marker);
    }

    // ---- parallel apply: replay the bucketed physical redo ----
    // (Empty in corruption mode, whose writes went inline above.)
    let (redo_threads_used, redo_parallel_ns) = redo.apply(&image)?;

    // ---- build the engine (heaps needed for logical undo) ----
    let syslog = SystemLog::open_with(
        Db::log_path(&dir),
        config.page_size,
        config.codeword_algebra,
        config.log_segment_bytes,
    )?;
    let next_txn = meta.next_txn.max(max_txn_seen);
    let next_audit = meta.next_audit.max(max_audit_seen);
    let db = build_db(
        config,
        Arc::clone(&image),
        syslog,
        catalog,
        CkptState {
            next_image: 1 - image_idx,
            serial,
            ckpts_since_full: 0,
            // The dirty-page footprint describes interface writes, not
            // what the crash (or the repair we just did) touched: the
            // first post-recovery certification must sweep everything.
            force_full: true,
        },
        next_txn,
        next_audit,
        None,
    )?;
    db.stats
        .redo_threads_used
        .store(redo_threads_used as u64, Ordering::Relaxed);
    db.stats
        .redo_parallel_ns
        .store(redo_parallel_ns, Ordering::Relaxed);

    // ---- undo phase: roll back incomplete transactions level by level ----
    let mut incomplete: Vec<TxnId> = att.keys().copied().collect();
    incomplete.sort_unstable();
    let mut deleted = Vec::new();
    let mut rolled_back = Vec::new();
    // Roll back in reverse id order (newest first) so that a quarantined
    // transaction's writes are removed before the corrupt transaction it
    // conflicted with is rolled back.
    for id in incomplete.iter().rev() {
        let st = att.get_mut(id).expect("present");
        rollback_direct(&db, &mut st.undo)?;
        if ctt.contains(id) {
            deleted.push(*id);
        } else {
            rolled_back.push(*id);
        }
    }
    deleted.sort_unstable();
    rolled_back.sort_unstable();

    // Record the aborts so the history reflects the rollback.
    {
        let aborts: Vec<LogRecord> = deleted
            .iter()
            .chain(rolled_back.iter())
            .map(|&txn| LogRecord::TxnAbort { txn })
            .collect();
        db.syslog.append_batch(&aborts);
        db.syslog.flush(false)?;
    }

    // ---- finish: rebuild runtime state, mandatory checkpoint ----
    for h in db.heaps.read().iter() {
        h.rebuild_from_image(&db.image)?;
    }
    db.prot.resync(&db.image)?;
    // Every page may differ from both checkpoint images now.
    db.syslog.dirty().note_range(db.config.db_pages);
    ckpt::checkpoint(&db)?;
    corruption::clear_marker(&db.config.dir)?;
    if db.config.scheme.uses_mprotect() {
        db.protector.enable()?;
    }

    Ok((
        db,
        RecoveryOutcome {
            mode,
            deleted_txns: deleted,
            rolled_back_txns: rolled_back,
            corrupt_ranges: cdt.ranges(),
            records_scanned,
        },
    ))
}

/// Prior-state recovery (paper §4.1's second model, "supported by most
/// commercial systems"): return the database to a transaction-consistent
/// state as of log position `upto`, discarding all later work.
///
/// The user is responsible for compensating *every* transaction after
/// `upto` — the paper contrasts this with the delete-transaction model,
/// which only removes the transactions actually affected.
///
/// Requires a certified checkpoint with `ck_end <= upto`; the stable log
/// is truncated at `upto` afterwards, so the discarded future cannot
/// resurface in a later recovery.
pub fn restore_prior_state(config: DaliConfig, upto: Lsn) -> Result<(Arc<Db>, RecoveryOutcome)> {
    config.validate().map_err(DaliError::InvalidArg)?;
    let dir = config.dir.clone();
    let (anchored, serial) = ckpt::read_anchor(&dir)?;
    // Prefer the anchored image; fall back to the other image when the
    // anchored checkpoint is too new.
    let meta = match ckpt::read_meta(&dir, anchored) {
        Ok(m) if m.ck_end <= upto => (anchored, m),
        _ => {
            let other = 1 - anchored;
            let m = ckpt::read_meta(&dir, other)?;
            if m.ck_end > upto {
                return Err(DaliError::RecoveryFailed(format!(
                    "no checkpoint is old enough to recover to {upto} \
                     (oldest usable checkpoint is at {})",
                    m.ck_end
                )));
            }
            (other, m)
        }
    };
    let (image_idx, meta) = meta;
    check_ckpt_algebra(&meta, config.codeword_algebra)?;
    check_ckpt_parity(&meta, config.resolved_parity_group_size())?;

    let image = Arc::new(DbImage::new(config.db_pages, config.page_size)?);
    let bytes = ckpt::load_image_bytes(&dir, image_idx, config.db_bytes())?;
    image.arena().write(0, &bytes)?;
    drop(bytes);
    let mut catalog = meta.catalog.clone();

    let mut att: HashMap<TxnId, TxnState> = Att::decode_for_recovery(&meta.att_blob)?
        .into_iter()
        .map(|s| (s.id, s))
        .collect();

    // Redo up to (not beyond) `upto`, buffering physical writes per
    // operation (see restart(): a prefix cut can split an operation's
    // batch, and unmatched physical records must be discarded).
    let records =
        SystemLog::scan_stable_with(Db::log_path(&dir), meta.ck_end, config.codeword_algebra)?;
    let mut records_scanned = 0usize;
    let mut max_txn_seen = 0u64;
    let mut max_audit_seen = 0u64;
    let mut pending_writes: PendingWrites = HashMap::new();
    let mut redo = RedoBuckets::new(config.resolved_redo_threads(), config.page_size);
    for (lsn, rec) in records {
        if lsn >= upto {
            break;
        }
        records_scanned += 1;
        if let Some(t) = rec.txn() {
            max_txn_seen = max_txn_seen.max(t.0 + 1);
        }
        match rec {
            LogRecord::TxnBegin { txn } => {
                att.entry(txn)
                    .or_insert_with(|| TxnState::new_for_recovery(txn));
            }
            LogRecord::OpBegin { txn, .. } => {
                att.entry(txn)
                    .or_insert_with(|| TxnState::new_for_recovery(txn));
            }
            LogRecord::PhysicalRedo {
                txn,
                op,
                addr,
                data,
            } => {
                pending_writes
                    .entry((txn, op))
                    .or_default()
                    .push((addr, data));
            }
            LogRecord::ReadLog { .. } => {}
            LogRecord::OpCommit { txn, op, undo } => {
                if let Some(writes) = pending_writes.remove(&(txn, op)) {
                    for (addr, data) in writes {
                        redo.push(addr, data);
                    }
                }
                let st = att
                    .entry(txn)
                    .or_insert_with(|| TxnState::new_for_recovery(txn));
                st.undo.commit_op(op, undo);
                st.next_op = st.next_op.max(op.0 + 1);
            }
            LogRecord::TxnCommit { txn } | LogRecord::TxnAbort { txn } => {
                let mut keys: Vec<_> = pending_writes
                    .keys()
                    .filter(|(t, _)| *t == txn)
                    .copied()
                    .collect();
                keys.sort_unstable_by_key(|(_, op)| op.0);
                for key in keys {
                    if let Some(writes) = pending_writes.remove(&key) {
                        for (addr, data) in writes {
                            redo.push(addr, data);
                        }
                    }
                }
                att.remove(&txn);
            }
            LogRecord::AuditBegin { audit_id } => {
                max_audit_seen = max_audit_seen.max(audit_id + 1);
            }
            LogRecord::AuditEnd { .. } | LogRecord::CkptComplete { .. } => {}
            LogRecord::CreateTable {
                table,
                name,
                rec_size,
                capacity,
                bitmap_base,
                data_base,
            } => {
                catalog.register(replayed_meta(
                    table,
                    name,
                    rec_size,
                    capacity,
                    bitmap_base,
                    data_base,
                    config.page_size,
                )?)?;
            }
        }
    }

    // Apply the bucketed redo, then truncate the discarded future before
    // reopening the log for append.
    let (redo_threads_used, redo_parallel_ns) = redo.apply(&image)?;
    dali_wal::segment::truncate_at(&Db::log_path(&dir), upto)?;

    let syslog = SystemLog::open_with(
        Db::log_path(&dir),
        config.page_size,
        config.codeword_algebra,
        config.log_segment_bytes,
    )?;
    let db = build_db(
        config,
        Arc::clone(&image),
        syslog,
        catalog,
        CkptState {
            next_image: 1 - image_idx,
            serial,
            ckpts_since_full: 0,
            // The dirty-page footprint describes interface writes, not
            // what the crash (or the repair we just did) touched: the
            // first post-recovery certification must sweep everything.
            force_full: true,
        },
        meta.next_txn.max(max_txn_seen),
        meta.next_audit.max(max_audit_seen),
        None,
    )?;
    db.stats
        .redo_threads_used
        .store(redo_threads_used as u64, Ordering::Relaxed);
    db.stats
        .redo_parallel_ns
        .store(redo_parallel_ns, Ordering::Relaxed);

    // Roll back transactions in flight at `upto` (transaction-consistent
    // prior state).
    let mut incomplete: Vec<TxnId> = att.keys().copied().collect();
    incomplete.sort_unstable();
    for id in incomplete.iter().rev() {
        let st = att.get_mut(id).expect("present");
        rollback_direct(&db, &mut st.undo)?;
    }
    {
        let aborts: Vec<LogRecord> = incomplete
            .iter()
            .map(|&txn| LogRecord::TxnAbort { txn })
            .collect();
        db.syslog.append_batch(&aborts);
        db.syslog.flush(false)?;
    }

    for h in db.heaps.read().iter() {
        h.rebuild_from_image(&db.image)?;
    }
    db.prot.resync(&db.image)?;
    db.syslog.dirty().note_range(db.config.db_pages);
    ckpt::checkpoint(&db)?;
    corruption::clear_marker(&db.config.dir)?;
    if db.config.scheme.uses_mprotect() {
        db.protector.enable()?;
    }

    Ok((
        db,
        RecoveryOutcome {
            mode: RecoveryMode::PriorState,
            deleted_txns: Vec::new(),
            rolled_back_txns: incomplete,
            corrupt_ranges: Vec::new(),
            records_scanned,
        },
    ))
}

/// Rebuild a `HeapMeta` from a replayed CreateTable record. The layout is
/// inferred: equal bitmap and data bases mean the page-local layout (its
/// parameters are a pure function of record and page size).
fn replayed_meta(
    table: dali_common::TableId,
    name: String,
    rec_size: u32,
    capacity: u64,
    bitmap_base: DbAddr,
    data_base: DbAddr,
    page_size: usize,
) -> Result<HeapMeta> {
    let layout = if bitmap_base == data_base {
        crate::catalog::HeapLayout::page_local(rec_size as usize, page_size)?
    } else {
        crate::catalog::HeapLayout::Separate
    };
    Ok(HeapMeta {
        table,
        name,
        rec_size: rec_size as usize,
        capacity: capacity as usize,
        bitmap_base,
        data_base,
        layout,
    })
}

fn seed_marker_ranges(cdt: &mut RangeSet, marker: &Option<CorruptionMarker>) {
    if let Some(m) = marker {
        for &(a, l) in &m.ranges {
            cdt.insert(a, l);
        }
    }
}

/// Reject a checkpoint certified under a different codeword algebra: its
/// image may hide exactly the corruption class the configured algebra
/// exists to catch, so silently adopting it would launder an uncertified
/// image into a certified one.
fn check_ckpt_algebra(meta: &ckpt::CkptMeta, configured: CodewordAlgebraKind) -> Result<()> {
    if meta.algebra != configured {
        return Err(DaliError::RecoveryFailed(format!(
            "checkpoint was certified under the {} algebra but the engine \
             is configured for {}; re-certify with the original algebra \
             before switching",
            meta.algebra.label(),
            configured.label()
        )));
    }
    Ok(())
}

/// Reject a checkpoint whose parity-stripe layout differs from the
/// configured one (`0` = stripe off). The persisted stripe file and the
/// repair ladder's group geometry must agree with what certification ran
/// under; the live stripe itself is rebuilt from the image after replay
/// regardless, so only the *layout* is checked here.
fn check_ckpt_parity(meta: &ckpt::CkptMeta, configured: usize) -> Result<()> {
    if meta.parity_group_size != configured as u64 {
        return Err(DaliError::RecoveryFailed(format!(
            "checkpoint was taken with parity group size {} but the engine \
             is configured for {}; re-checkpoint with the original layout \
             before switching",
            meta.parity_group_size, configured
        )));
    }
    Ok(())
}

/// Compare logged read codewords against the recovering image: the read
/// record covers `[addr, addr+len)` and carries one codeword per
/// overlapped protection region.
fn codewords_match(
    image: &DbImage,
    algebra: CodewordAlgebraKind,
    region_size: usize,
    addr: DbAddr,
    len: usize,
    logged: &[u32],
) -> Result<bool> {
    let first = addr.0 / region_size;
    let last = if len == 0 {
        first
    } else {
        (addr.0 + len - 1) / region_size
    };
    if logged.len() != last - first + 1 {
        // Geometry changed between runs; treat as mismatch (conservative).
        return Ok(false);
    }
    for (i, r) in (first..=last).enumerate() {
        let cw = image.fold(algebra, DbAddr(r * region_size), region_size)?;
        if cw != logged[i] {
            return Ok(false);
        }
    }
    Ok(true)
}
