//! Record lock manager: strict two-phase locking on record ids, sharded
//! by record-id hash.
//!
//! Transactions acquire shared locks to read and exclusive locks to
//! write; all locks are held until commit or abort. Shared→exclusive
//! upgrade is granted when the requester is the sole holder.
//!
//! The lock table is split into `shards` independent shards (each a
//! mutex-guarded map plus a condvar), selected by a multiplicative hash
//! of the record id, so disjoint workloads — like partitioned TPC-B —
//! never serialize on a single table mutex. [`LockManager::unlock_all`]
//! sweeps the shards one at a time; it never holds more than one shard
//! lock, so release cannot deadlock against concurrent acquirers.
//!
//! Deadlocks are resolved two ways:
//!
//! * **Timeout** ([`dali_common::DaliConfig::lock_timeout`]), always on:
//!   a request that cannot be granted within the timeout fails with
//!   [`DaliError::LockDenied`] and the caller is expected to abort.
//! * **Wait-for-graph detection**, optional
//!   ([`dali_common::DaliConfig::deadlock_detect_interval`]): each
//!   blocked transaction registers the record it waits on; every
//!   interval, a blocked waiter walks waiter→holder edges looking for a
//!   cycle reachable from itself. If one exists, the *youngest*
//!   transaction in the cycle (largest [`TxnId`] — least work lost) is
//!   doomed and fails its pending request with `LockDenied` within
//!   milliseconds instead of burning the full timeout. Edges are
//!   snapshotted one shard at a time, so a check can observe a stale
//!   cycle that has since dissolved; the only consequence is a spurious
//!   `LockDenied`, which callers already treat as "abort and retry".
//!
//! Strict 2PL matters beyond isolation here: the delete-transaction
//! recovery correctness argument (paper §4.3 Discussion) relies on
//! conflicting operations reaching the log in conflict order, which strict
//! record locks guarantee even with Dali-style local logging.

use dali_common::{DaliError, RecId, Result, TxnId};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

/// Lock mode.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum LockMode {
    Shared,
    Exclusive,
}

#[derive(Debug, Default)]
struct LockState {
    /// Current holders with their strongest granted mode.
    holders: Vec<(TxnId, LockMode)>,
}

impl LockState {
    fn can_grant(&self, txn: TxnId, mode: LockMode) -> bool {
        match mode {
            LockMode::Shared => self
                .holders
                .iter()
                .all(|&(t, m)| t == txn || m == LockMode::Shared),
            LockMode::Exclusive => self.holders.iter().all(|&(t, _)| t == txn),
        }
    }

    fn grant(&mut self, txn: TxnId, mode: LockMode) {
        if let Some(h) = self.holders.iter_mut().find(|(t, _)| *t == txn) {
            if mode == LockMode::Exclusive {
                h.1 = LockMode::Exclusive;
            }
        } else {
            self.holders.push((txn, mode));
        }
    }
}

/// One shard of the lock table.
#[derive(Default)]
struct Shard {
    table: Mutex<HashMap<RecId, LockState>>,
    waiters: Condvar,
}

/// Deadlock-detector bookkeeping, shared across shards. Touched only on
/// the blocking path (and once per `unlock_all` when detection is on),
/// never on an immediately-granted request.
#[derive(Default)]
struct DetectorState {
    /// The record each blocked transaction is waiting on.
    waiting: HashMap<TxnId, RecId>,
    /// Transactions picked as deadlock victims; each fails its pending
    /// lock request with `LockDenied` at its next wake-up.
    doomed: HashSet<TxnId>,
}

/// The sharded lock table.
pub struct LockManager {
    shards: Box<[Shard]>,
    timeout: Duration,
    /// `Some(interval)`: blocked waiters run a wait-for-graph cycle check
    /// every `interval`. `None`: timeout is the only deadlock resolution.
    detect_every: Option<Duration>,
    detector: Mutex<DetectorState>,
}

impl LockManager {
    /// Single-shard manager with timeout-only deadlock resolution (the
    /// pre-sharding behaviour; used as the baseline in `lock_scale`).
    pub fn new(timeout: Duration) -> LockManager {
        LockManager::with_config(timeout, 1, None)
    }

    /// Manager with `shards` shards (rounded up to a power of two) and
    /// optional wait-for-graph deadlock detection.
    pub fn with_config(
        timeout: Duration,
        shards: usize,
        detect_every: Option<Duration>,
    ) -> LockManager {
        let n = shards.max(1).next_power_of_two();
        LockManager {
            shards: (0..n).map(|_| Shard::default()).collect(),
            timeout,
            detect_every,
            detector: Mutex::new(DetectorState::default()),
        }
    }

    /// Number of shards (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Shard index for a record: multiplicative (Fibonacci) hash of the
    /// (table, slot) pair, so consecutive slots spread across shards.
    #[inline]
    fn shard_of(&self, rec: RecId) -> usize {
        let key = ((rec.table.0 as u64) << 32) | rec.slot.0 as u64;
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 32) as usize & (self.shards.len() - 1)
    }

    /// Remove `rec`'s entry if it has no holders (a waiter's
    /// `or_default` insertion must not outlive the wait — without this,
    /// denied requests leak empty [`LockState`]s over long runs).
    fn drop_if_empty(table: &mut HashMap<RecId, LockState>, rec: RecId) {
        if table.get(&rec).is_some_and(|s| s.holders.is_empty()) {
            table.remove(&rec);
        }
    }

    /// Deregister `txn` from the detector (it is no longer blocked); also
    /// clears a doomed flag that raced with the grant.
    fn stop_waiting(&self, txn: TxnId) {
        let mut det = self.detector.lock();
        det.waiting.remove(&txn);
        det.doomed.remove(&txn);
    }

    /// Acquire `rec` in `mode` for `txn`. Reentrant: re-requesting a held
    /// mode (or a weaker one) succeeds immediately; shared→exclusive
    /// upgrades wait for other readers to drain.
    pub fn lock(&self, txn: TxnId, rec: RecId, mode: LockMode) -> Result<()> {
        let deadline = Instant::now() + self.timeout;
        let shard = &self.shards[self.shard_of(rec)];
        let mut table = shard.table.lock();
        let mut waiting = false;
        loop {
            let state = table.entry(rec).or_default();
            let granted = match state.holders.iter().find(|(t, _)| *t == txn) {
                // Already holding a sufficient mode?
                Some(&(_, held)) if held == LockMode::Exclusive || mode == LockMode::Shared => true,
                _ if state.can_grant(txn, mode) => {
                    state.grant(txn, mode);
                    true
                }
                _ => false,
            };
            if granted {
                if waiting && self.detect_every.is_some() {
                    self.stop_waiting(txn);
                }
                return Ok(());
            }
            if !waiting && self.detect_every.is_some() {
                self.detector.lock().waiting.insert(txn, rec);
            }
            waiting = true;
            // With detection on, wake every interval to run a cycle check
            // even if nobody releases.
            let slice = match self.detect_every {
                Some(iv) => deadline.min(Instant::now() + iv),
                None => deadline,
            };
            let slice_timed_out = shard.waiters.wait_until(&mut table, slice).timed_out();
            if self.detect_every.is_some() && self.detector.lock().doomed.contains(&txn) {
                self.stop_waiting(txn);
                Self::drop_if_empty(&mut table, rec);
                return Err(DaliError::LockDenied { txn, rec });
            }
            if slice_timed_out {
                if Instant::now() >= deadline {
                    if waiting && self.detect_every.is_some() {
                        self.stop_waiting(txn);
                    }
                    Self::drop_if_empty(&mut table, rec);
                    return Err(DaliError::LockDenied { txn, rec });
                }
                // Interval expired before the timeout: walk the wait-for
                // graph. The shard lock is released during the walk (the
                // detector locks shards one at a time).
                drop(table);
                let doomed_self = self.detect_and_resolve(txn);
                table = shard.table.lock();
                if doomed_self {
                    self.stop_waiting(txn);
                    Self::drop_if_empty(&mut table, rec);
                    return Err(DaliError::LockDenied { txn, rec });
                }
            }
        }
    }

    /// Walk the wait-for graph from `me`; if a cycle is reachable, doom
    /// the youngest transaction in it. Returns true when the victim is
    /// `me` (the caller fails its own request; other victims are woken
    /// and fail theirs).
    fn detect_and_resolve(&self, me: TxnId) -> bool {
        let waiting: Vec<(TxnId, RecId)> = {
            let det = self.detector.lock();
            det.waiting.iter().map(|(&t, &r)| (t, r)).collect()
        };
        // waiter → holders edges, snapshotted one shard at a time. The
        // snapshot can be stale (see module docs); staleness only ever
        // costs a spurious LockDenied, never a missed *persistent*
        // deadlock — a cycle that truly persists is re-found by the next
        // interval check.
        let mut edges: HashMap<TxnId, Vec<TxnId>> = HashMap::with_capacity(waiting.len());
        for &(w, rec) in &waiting {
            let table = self.shards[self.shard_of(rec)].table.lock();
            if let Some(state) = table.get(&rec) {
                edges.insert(
                    w,
                    state
                        .holders
                        .iter()
                        .map(|&(t, _)| t)
                        .filter(|&t| t != w)
                        .collect(),
                );
            }
        }
        let Some(cycle) = find_cycle(&edges, me) else {
            return false;
        };
        // Validate the cycle against fresh state before dooming anyone.
        // A genuine deadlock is stable — every member stays blocked on
        // the same record and every edge persists — while a phantom
        // cycle assembled from a stale multi-shard snapshot almost never
        // re-verifies. This keeps spurious victim aborts (and the
        // wasted-work retries they cause) near zero.
        let regs: HashMap<TxnId, RecId> = waiting.iter().copied().collect();
        {
            let det = self.detector.lock();
            for m in &cycle {
                if det.waiting.get(m) != regs.get(m) {
                    return false;
                }
            }
        }
        for (i, &a) in cycle.iter().enumerate() {
            let b = cycle[(i + 1) % cycle.len()];
            let rec = regs[&a];
            let table = self.shards[self.shard_of(rec)].table.lock();
            let edge_holds = table
                .get(&rec)
                .is_some_and(|s| s.holders.iter().any(|&(t, _)| t == b));
            if !edge_holds {
                return false;
            }
        }
        // Youngest transaction = largest TxnId (txn ids are allocated
        // monotonically), i.e. the least work lost.
        let victim = *cycle.iter().max().expect("cycle is non-empty");
        let mut det = self.detector.lock();
        // Doom only if the victim is still blocked; it may have been
        // granted since the snapshot.
        let Some(&vrec) = det.waiting.get(&victim) else {
            return false;
        };
        det.doomed.insert(victim);
        drop(det);
        if victim == me {
            return true;
        }
        self.shards[self.shard_of(vrec)].waiters.notify_all();
        false
    }

    /// Release every lock held by `txn` (end of transaction, strict 2PL).
    /// Sweeps the shards one at a time — release never holds more than
    /// one shard lock — and drops lock states that end up with no
    /// holders, so the table shrinks back as transactions finish.
    pub fn unlock_all(&self, txn: TxnId) {
        for shard in &self.shards {
            let mut changed = false;
            let mut table = shard.table.lock();
            table.retain(|_, state| {
                let before = state.holders.len();
                state.holders.retain(|&(t, _)| t != txn);
                changed |= state.holders.len() != before;
                !state.holders.is_empty()
            });
            drop(table);
            if changed {
                shard.waiters.notify_all();
            }
        }
        if self.detect_every.is_some() {
            self.stop_waiting(txn);
        }
    }

    /// The strongest mode `txn` holds on `rec`, if any.
    pub fn held_mode(&self, txn: TxnId, rec: RecId) -> Option<LockMode> {
        let table = self.shards[self.shard_of(rec)].table.lock();
        table
            .get(&rec)
            .and_then(|s| s.holders.iter().find(|(t, _)| *t == txn).map(|&(_, m)| m))
    }

    /// Number of records currently locked (diagnostics). Sums the shards
    /// without holding them all at once, so the count is approximate
    /// under concurrent traffic and exact at quiescence.
    pub fn locked_records(&self) -> usize {
        self.shards.iter().map(|s| s.table.lock().len()).sum()
    }
}

/// Find a cycle in `edges` reachable from `start`; returns the cycle's
/// members. Iterative DFS with an explicit path so deep chains cannot
/// overflow the stack.
fn find_cycle(edges: &HashMap<TxnId, Vec<TxnId>>, start: TxnId) -> Option<Vec<TxnId>> {
    let mut path: Vec<TxnId> = vec![start];
    let mut cursors: Vec<usize> = vec![0];
    let mut visited: HashSet<TxnId> = HashSet::new();
    visited.insert(start);
    while let (Some(&node), Some(cursor)) = (path.last(), cursors.last_mut()) {
        let next = edges.get(&node).and_then(|succ| succ.get(*cursor)).copied();
        *cursor += 1;
        match next {
            Some(succ) => {
                if let Some(pos) = path.iter().position(|&t| t == succ) {
                    return Some(path[pos..].to_vec());
                }
                if visited.insert(succ) {
                    path.push(succ);
                    cursors.push(0);
                }
            }
            None => {
                path.pop();
                cursors.pop();
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use dali_common::{SlotId, TableId};
    use std::sync::Arc;

    fn rec(n: u32) -> RecId {
        RecId::new(TableId(1), SlotId(n))
    }

    fn mgr() -> LockManager {
        LockManager::new(Duration::from_millis(100))
    }

    fn sharded() -> LockManager {
        LockManager::with_config(Duration::from_millis(100), 8, None)
    }

    #[test]
    fn shared_locks_coexist() {
        for m in [mgr(), sharded()] {
            m.lock(TxnId(1), rec(1), LockMode::Shared).unwrap();
            m.lock(TxnId(2), rec(1), LockMode::Shared).unwrap();
            assert_eq!(m.held_mode(TxnId(1), rec(1)), Some(LockMode::Shared));
            assert_eq!(m.held_mode(TxnId(2), rec(1)), Some(LockMode::Shared));
        }
    }

    #[test]
    fn exclusive_blocks_other_txn() {
        for m in [mgr(), sharded()] {
            m.lock(TxnId(1), rec(1), LockMode::Exclusive).unwrap();
            let err = m.lock(TxnId(2), rec(1), LockMode::Shared).unwrap_err();
            assert!(matches!(err, DaliError::LockDenied { .. }));
        }
    }

    #[test]
    fn reentrant_and_upgrade() {
        for m in [mgr(), sharded()] {
            m.lock(TxnId(1), rec(1), LockMode::Shared).unwrap();
            m.lock(TxnId(1), rec(1), LockMode::Shared).unwrap();
            // Sole reader can upgrade.
            m.lock(TxnId(1), rec(1), LockMode::Exclusive).unwrap();
            assert_eq!(m.held_mode(TxnId(1), rec(1)), Some(LockMode::Exclusive));
            // Exclusive holder can re-request shared.
            m.lock(TxnId(1), rec(1), LockMode::Shared).unwrap();
            assert_eq!(m.held_mode(TxnId(1), rec(1)), Some(LockMode::Exclusive));
        }
    }

    #[test]
    fn upgrade_blocked_by_second_reader() {
        for m in [mgr(), sharded()] {
            m.lock(TxnId(1), rec(1), LockMode::Shared).unwrap();
            m.lock(TxnId(2), rec(1), LockMode::Shared).unwrap();
            assert!(m.lock(TxnId(1), rec(1), LockMode::Exclusive).is_err());
        }
    }

    #[test]
    fn release_wakes_waiter() {
        let m = Arc::new(LockManager::with_config(Duration::from_secs(5), 8, None));
        m.lock(TxnId(1), rec(1), LockMode::Exclusive).unwrap();
        let m2 = Arc::clone(&m);
        let h = std::thread::spawn(move || m2.lock(TxnId(2), rec(1), LockMode::Exclusive));
        std::thread::sleep(Duration::from_millis(30));
        m.unlock_all(TxnId(1));
        h.join().unwrap().unwrap();
        assert_eq!(m.held_mode(TxnId(2), rec(1)), Some(LockMode::Exclusive));
    }

    #[test]
    fn unlock_all_clears_table() {
        for m in [mgr(), sharded()] {
            m.lock(TxnId(1), rec(1), LockMode::Exclusive).unwrap();
            m.lock(TxnId(1), rec(2), LockMode::Shared).unwrap();
            m.unlock_all(TxnId(1));
            assert_eq!(m.locked_records(), 0);
            assert_eq!(m.held_mode(TxnId(1), rec(1)), None);
        }
    }

    #[test]
    fn different_records_do_not_conflict() {
        for m in [mgr(), sharded()] {
            m.lock(TxnId(1), rec(1), LockMode::Exclusive).unwrap();
            m.lock(TxnId(2), rec(2), LockMode::Exclusive).unwrap();
        }
    }

    #[test]
    fn shard_spread_covers_multiple_shards() {
        let m = sharded();
        let hit: HashSet<usize> = (0..64u32).map(|n| m.shard_of(rec(n))).collect();
        assert!(hit.len() > 1, "64 records all hashed to one shard");
    }

    #[test]
    fn denied_requests_leave_no_empty_states() {
        // Regression: a waiter's or_default entry must not survive its
        // denial — the table must return to exactly the held set.
        for m in [mgr(), sharded()] {
            m.lock(TxnId(1), rec(1), LockMode::Exclusive).unwrap();
            for t in 2..10u64 {
                assert!(m.lock(TxnId(t), rec(1), LockMode::Shared).is_err());
                // Denied waits on *unheld* records must vanish entirely.
                assert!(m
                    .lock(TxnId(1), rec(100 + t as u32), LockMode::Shared)
                    .is_ok());
            }
            m.unlock_all(TxnId(1));
            assert_eq!(m.locked_records(), 0, "empty LockStates leaked");
        }
    }

    #[test]
    fn deadlock_resolved_by_timeout() {
        let m = Arc::new(LockManager::new(Duration::from_millis(80)));
        m.lock(TxnId(1), rec(1), LockMode::Exclusive).unwrap();
        m.lock(TxnId(2), rec(2), LockMode::Exclusive).unwrap();
        let m2 = Arc::clone(&m);
        let h = std::thread::spawn(move || m2.lock(TxnId(2), rec(1), LockMode::Exclusive));
        let r1 = m.lock(TxnId(1), rec(2), LockMode::Exclusive);
        let r2 = h.join().unwrap();
        // At least one side must time out.
        assert!(r1.is_err() || r2.is_err());
    }

    #[test]
    fn deadlock_resolved_by_detector_dooms_youngest() {
        // Long timeout: only the detector can resolve this in time.
        let m = Arc::new(LockManager::with_config(
            Duration::from_secs(30),
            4,
            Some(Duration::from_millis(2)),
        ));
        m.lock(TxnId(1), rec(1), LockMode::Exclusive).unwrap();
        m.lock(TxnId(2), rec(2), LockMode::Exclusive).unwrap();
        let m2 = Arc::clone(&m);
        let h = std::thread::spawn(move || {
            let r = m2.lock(TxnId(2), rec(1), LockMode::Exclusive);
            m2.unlock_all(TxnId(2));
            r
        });
        let start = Instant::now();
        let r1 = m.lock(TxnId(1), rec(2), LockMode::Exclusive);
        let r2 = h.join().unwrap();
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "detector did not beat the timeout"
        );
        // The youngest (TxnId 2) is the victim; the older txn survives.
        assert!(r1.is_ok(), "survivor was denied: {r1:?}");
        assert!(matches!(
            r2,
            Err(DaliError::LockDenied { txn: TxnId(2), .. })
        ));
        m.unlock_all(TxnId(1));
        assert_eq!(m.locked_records(), 0);
    }

    #[test]
    fn find_cycle_basics() {
        let t = TxnId;
        let mut e: HashMap<TxnId, Vec<TxnId>> = HashMap::new();
        e.insert(t(1), vec![t(2)]);
        e.insert(t(2), vec![t(3)]);
        assert!(find_cycle(&e, t(1)).is_none());
        e.insert(t(3), vec![t(1)]);
        let mut c = find_cycle(&e, t(1)).unwrap();
        c.sort();
        assert_eq!(c, vec![t(1), t(2), t(3)]);
        // A cycle not containing the start is still found when reachable.
        let mut e2: HashMap<TxnId, Vec<TxnId>> = HashMap::new();
        e2.insert(t(9), vec![t(1)]);
        e2.insert(t(1), vec![t(2)]);
        e2.insert(t(2), vec![t(1)]);
        let mut c2 = find_cycle(&e2, t(9)).unwrap();
        c2.sort();
        assert_eq!(c2, vec![t(1), t(2)]);
    }
}
