//! Record lock manager: strict two-phase locking on record ids.
//!
//! Transactions acquire shared locks to read and exclusive locks to
//! write; all locks are held until commit or abort. Shared→exclusive
//! upgrade is granted when the requester is the sole holder. Deadlocks are
//! resolved by timeout ([`dali_common::DaliConfig::lock_timeout`]): a
//! request that cannot be granted within the timeout fails with
//! [`DaliError::LockDenied`] and the caller is expected to abort.
//!
//! Strict 2PL matters beyond isolation here: the delete-transaction
//! recovery correctness argument (paper §4.3 Discussion) relies on
//! conflicting operations reaching the log in conflict order, which strict
//! record locks guarantee even with Dali-style local logging.

use dali_common::{DaliError, RecId, Result, TxnId};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Lock mode.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum LockMode {
    Shared,
    Exclusive,
}

#[derive(Debug, Default)]
struct LockState {
    /// Current holders with their strongest granted mode.
    holders: Vec<(TxnId, LockMode)>,
}

impl LockState {
    fn can_grant(&self, txn: TxnId, mode: LockMode) -> bool {
        match mode {
            LockMode::Shared => self
                .holders
                .iter()
                .all(|&(t, m)| t == txn || m == LockMode::Shared),
            LockMode::Exclusive => self.holders.iter().all(|&(t, _)| t == txn),
        }
    }

    fn grant(&mut self, txn: TxnId, mode: LockMode) {
        if let Some(h) = self.holders.iter_mut().find(|(t, _)| *t == txn) {
            if mode == LockMode::Exclusive {
                h.1 = LockMode::Exclusive;
            }
        } else {
            self.holders.push((txn, mode));
        }
    }
}

/// The lock table.
pub struct LockManager {
    table: Mutex<HashMap<RecId, LockState>>,
    waiters: Condvar,
    timeout: Duration,
}

impl LockManager {
    /// New lock manager with the given wait timeout.
    pub fn new(timeout: Duration) -> LockManager {
        LockManager {
            table: Mutex::new(HashMap::new()),
            waiters: Condvar::new(),
            timeout,
        }
    }

    /// Acquire `rec` in `mode` for `txn`. Reentrant: re-requesting a held
    /// mode (or a weaker one) succeeds immediately; shared→exclusive
    /// upgrades wait for other readers to drain.
    pub fn lock(&self, txn: TxnId, rec: RecId, mode: LockMode) -> Result<()> {
        let deadline = Instant::now() + self.timeout;
        let mut table = self.table.lock();
        loop {
            let state = table.entry(rec).or_default();
            // Already holding a sufficient mode?
            if let Some(&(_, held)) = state.holders.iter().find(|(t, _)| *t == txn) {
                if held == LockMode::Exclusive || mode == LockMode::Shared {
                    return Ok(());
                }
            }
            if state.can_grant(txn, mode) {
                state.grant(txn, mode);
                return Ok(());
            }
            if self.waiters.wait_until(&mut table, deadline).timed_out() {
                return Err(DaliError::LockDenied { txn, rec });
            }
        }
    }

    /// Release every lock held by `txn` (end of transaction).
    pub fn release_all(&self, txn: TxnId) {
        let mut table = self.table.lock();
        table.retain(|_, state| {
            state.holders.retain(|&(t, _)| t != txn);
            !state.holders.is_empty()
        });
        self.waiters.notify_all();
    }

    /// The strongest mode `txn` holds on `rec`, if any.
    pub fn held_mode(&self, txn: TxnId, rec: RecId) -> Option<LockMode> {
        let table = self.table.lock();
        table
            .get(&rec)
            .and_then(|s| s.holders.iter().find(|(t, _)| *t == txn).map(|&(_, m)| m))
    }

    /// Number of records currently locked (diagnostics).
    pub fn locked_records(&self) -> usize {
        self.table.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dali_common::{SlotId, TableId};
    use std::sync::Arc;

    fn rec(n: u32) -> RecId {
        RecId::new(TableId(1), SlotId(n))
    }

    fn mgr() -> LockManager {
        LockManager::new(Duration::from_millis(100))
    }

    #[test]
    fn shared_locks_coexist() {
        let m = mgr();
        m.lock(TxnId(1), rec(1), LockMode::Shared).unwrap();
        m.lock(TxnId(2), rec(1), LockMode::Shared).unwrap();
        assert_eq!(m.held_mode(TxnId(1), rec(1)), Some(LockMode::Shared));
        assert_eq!(m.held_mode(TxnId(2), rec(1)), Some(LockMode::Shared));
    }

    #[test]
    fn exclusive_blocks_other_txn() {
        let m = mgr();
        m.lock(TxnId(1), rec(1), LockMode::Exclusive).unwrap();
        let err = m.lock(TxnId(2), rec(1), LockMode::Shared).unwrap_err();
        assert!(matches!(err, DaliError::LockDenied { .. }));
    }

    #[test]
    fn reentrant_and_upgrade() {
        let m = mgr();
        m.lock(TxnId(1), rec(1), LockMode::Shared).unwrap();
        m.lock(TxnId(1), rec(1), LockMode::Shared).unwrap();
        // Sole reader can upgrade.
        m.lock(TxnId(1), rec(1), LockMode::Exclusive).unwrap();
        assert_eq!(m.held_mode(TxnId(1), rec(1)), Some(LockMode::Exclusive));
        // Exclusive holder can re-request shared.
        m.lock(TxnId(1), rec(1), LockMode::Shared).unwrap();
        assert_eq!(m.held_mode(TxnId(1), rec(1)), Some(LockMode::Exclusive));
    }

    #[test]
    fn upgrade_blocked_by_second_reader() {
        let m = mgr();
        m.lock(TxnId(1), rec(1), LockMode::Shared).unwrap();
        m.lock(TxnId(2), rec(1), LockMode::Shared).unwrap();
        assert!(m.lock(TxnId(1), rec(1), LockMode::Exclusive).is_err());
    }

    #[test]
    fn release_wakes_waiter() {
        let m = Arc::new(LockManager::new(Duration::from_secs(5)));
        m.lock(TxnId(1), rec(1), LockMode::Exclusive).unwrap();
        let m2 = Arc::clone(&m);
        let h = std::thread::spawn(move || m2.lock(TxnId(2), rec(1), LockMode::Exclusive));
        std::thread::sleep(Duration::from_millis(30));
        m.release_all(TxnId(1));
        h.join().unwrap().unwrap();
        assert_eq!(m.held_mode(TxnId(2), rec(1)), Some(LockMode::Exclusive));
    }

    #[test]
    fn release_all_clears_table() {
        let m = mgr();
        m.lock(TxnId(1), rec(1), LockMode::Exclusive).unwrap();
        m.lock(TxnId(1), rec(2), LockMode::Shared).unwrap();
        m.release_all(TxnId(1));
        assert_eq!(m.locked_records(), 0);
        assert_eq!(m.held_mode(TxnId(1), rec(1)), None);
    }

    #[test]
    fn different_records_do_not_conflict() {
        let m = mgr();
        m.lock(TxnId(1), rec(1), LockMode::Exclusive).unwrap();
        m.lock(TxnId(2), rec(2), LockMode::Exclusive).unwrap();
    }

    #[test]
    fn deadlock_resolved_by_timeout() {
        let m = Arc::new(LockManager::new(Duration::from_millis(80)));
        m.lock(TxnId(1), rec(1), LockMode::Exclusive).unwrap();
        m.lock(TxnId(2), rec(2), LockMode::Exclusive).unwrap();
        let m2 = Arc::clone(&m);
        let h = std::thread::spawn(move || m2.lock(TxnId(2), rec(1), LockMode::Exclusive));
        let r1 = m.lock(TxnId(1), rec(2), LockMode::Exclusive);
        let r2 = h.join().unwrap();
        // At least one side must time out.
        assert!(r1.is_err() || r2.is_err());
    }
}
