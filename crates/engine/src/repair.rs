//! Parity-based online repair: the self-healing layer above the auditor.
//!
//! A failed audit names the corrupt regions; this module tries to rebuild
//! each one *in place* from its parity group
//! ([`CodewordProtection::repair_region`](dali_codeword::CodewordProtection::repair_region))
//! before anyone reaches for the log. The fallback ladder:
//!
//! 1. **Parity rebuild** — exclusive latch bracket over the group, drain
//!    its deferred shards, reconstruct `parity ⊕ (⊕ siblings)`, verify
//!    the result against the maintained codeword, write it back. No WAL
//!    replay, no transaction rollback, latency proportional to one group.
//! 2. **Online cache recovery** ([`corruption::cache_repair`]) — when
//!    parity declines (stale stripe, double fault in one group, failed
//!    re-verification): rebuild the affected pages from the certified
//!    checkpoint plus a physical-redo replay. Rolls back active
//!    transactions; still no restart.
//! 3. **Restart recovery** — only if the caller chose to poison instead
//!    (no parity and no certified checkpoint path), via the corruption
//!    marker as before.
//!
//! [`auto_repair`] is the hook the audit and checkpoint-certification
//! paths call on a dirty report: it walks the ladder, then *re-audits*
//! the affected regions — only a clean re-audit counts as healed, so a
//! reconstruction that somehow reproduced corrupt bytes can never
//! silently mask a fault.
//!
//! **Scheme boundary.** The ladder only exists for the direct-corruption
//! schemes (`DataCodeword`, `ReadPrecheck`, `DeferredMaintenance`).
//! Under the read-logging schemes a detected region may already have
//! been *read* by committed transactions — carried corruption that no
//! byte-level rebuild can undo — so repair refuses and the
//! delete-transaction recovery model (paper §4) handles the fault, taint
//! closure and all.

use crate::corruption;
use crate::db::Db;
use dali_codeword::{AuditReport, RegionId, RepairFallback};
use dali_common::{DaliError, Result};
use std::sync::atomic::Ordering::Relaxed;
use std::sync::Arc;

/// How a batch of corrupt regions was brought back.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RepairOutcome {
    /// Every region was rebuilt in place from its parity group; no log
    /// replay, no transaction was disturbed.
    RepairedInPlace {
        regions_rebuilt: usize,
        bytes_rebuilt: usize,
    },
    /// Parity declined for at least one region (`fallback` says why); the
    /// remaining regions were rebuilt from the certified checkpoint plus
    /// a stable-log replay (active transactions rolled back).
    RecoveredViaLog {
        /// Regions parity did rebuild before the ladder dropped a rung.
        regions_rebuilt: usize,
        bytes_rebuilt: usize,
        fallback: RepairFallback,
        records_replayed: usize,
    },
}

impl RepairOutcome {
    /// Did the whole batch stay on the parity rung (no WAL replay)?
    pub fn in_place(&self) -> bool {
        matches!(self, RepairOutcome::RepairedInPlace { .. })
    }
}

/// Repair one region (the `Repair(region)` admin verb). See
/// [`repair_regions`].
pub fn repair_region(db: &Arc<Db>, region: RegionId) -> Result<RepairOutcome> {
    let outcome = repair_regions(db, &[region])?;
    // A wild write happened somewhere; the dirty-page footprint no longer
    // bounds the damage, so the next certification must sweep everything.
    // (The checkpoint path sets this itself — it holds the ckpt_state
    // lock across its call into the ladder, so the ladder must not.)
    db.ckpt_state.lock().force_full = true;
    Ok(outcome)
}

/// Walk the repair ladder for `regions`: parity rebuild per region, with
/// one collective drop to online cache recovery the moment any region's
/// parity declines. Counters land in
/// [`EngineStats`](crate::db::EngineStats) and the repaired pages are
/// re-noted dirty so the next checkpoint rewrites them.
///
/// Does **not** touch `ckpt_state` (the checkpoint path calls in with
/// that lock held): callers outside the checkpoint must force the next
/// certification full themselves, as [`repair_region`] does.
pub fn repair_regions(db: &Arc<Db>, regions: &[RegionId]) -> Result<RepairOutcome> {
    db.check_alive()?;
    if !db.config.scheme.maintains_codewords() {
        return Err(DaliError::InvalidArg(
            "repair requires a codeword-maintaining scheme".into(),
        ));
    }
    if db.config.scheme.supports_delete_txn_recovery() {
        // Read-logging schemes track *carried* corruption: a transaction
        // may already have read the corrupt bytes and committed writes
        // derived from them. No byte-level rebuild — parity or cache —
        // can undo that; only delete-transaction recovery (§4) computes
        // the taint closure from the read log. Repairing in place here
        // would silently keep the carried corruption, so the online
        // ladder is unavailable under these schemes.
        return Err(DaliError::InvalidArg(
            "online repair is unavailable under read-logging schemes: carried corruption \
             needs delete-transaction recovery"
                .into(),
        ));
    }
    let num_regions = db.prot.geometry().num_regions();
    if let Some(&bad) = regions.iter().find(|&&r| r >= num_regions) {
        return Err(DaliError::InvalidArg(format!(
            "region {bad} out of range (database has {num_regions} regions)"
        )));
    }
    let stats = &db.stats;
    let start = std::time::Instant::now();
    let mut rebuilt = 0usize;
    let mut bytes = 0usize;
    let mut fallback: Option<RepairFallback> = None;
    let mut unrepaired: Vec<RegionId> = Vec::new();
    for (i, &r) in regions.iter().enumerate() {
        stats.repair_attempted.fetch_add(1, Relaxed);
        match db.prot.repair_region(&db.image, r)? {
            Ok(n) => {
                rebuilt += 1;
                bytes += n;
                stats.repair_succeeded.fetch_add(1, Relaxed);
                stats.repair_bytes_rebuilt.fetch_add(n as u64, Relaxed);
            }
            Err(why) => {
                stats.repair_fell_back.fetch_add(1, Relaxed);
                fallback = Some(why);
                unrepaired = regions[i..].to_vec();
                // The rest of the batch rides the same log-based repair.
                stats
                    .repair_attempted
                    .fetch_add((regions.len() - i - 1) as u64, Relaxed);
                stats
                    .repair_fell_back
                    .fetch_add((regions.len() - i - 1) as u64, Relaxed);
                break;
            }
        }
    }
    stats
        .repair_ns
        .fetch_add(start.elapsed().as_nanos() as u64, Relaxed);

    note_region_pages(db, regions.iter().copied());

    match fallback {
        None => Ok(RepairOutcome::RepairedInPlace {
            regions_rebuilt: rebuilt,
            bytes_rebuilt: bytes,
        }),
        Some(why) => {
            let geom = db.prot.geometry();
            let ranges: Vec<_> = unrepaired
                .iter()
                .map(|&r| (geom.region_base(r), geom.region_size()))
                .collect();
            let records_replayed = corruption::cache_repair(db, &ranges)?;
            Ok(RepairOutcome::RecoveredViaLog {
                regions_rebuilt: rebuilt,
                bytes_rebuilt: bytes,
                fallback: why,
                records_replayed,
            })
        }
    }
}

fn note_region_pages(db: &Arc<Db>, regions: impl Iterator<Item = RegionId>) {
    let geom = db.prot.geometry();
    let mut pages: Vec<_> = regions
        .flat_map(|r| {
            db.image
                .pages_overlapping(geom.region_base(r), geom.region_size())
        })
        .collect();
    pages.sort_unstable();
    pages.dedup();
    db.syslog.dirty().note_all(pages);
}

/// The automatic hook behind a dirty audit or certification report: walk
/// the repair ladder for every corrupt region, then re-audit exactly
/// those regions. Returns the outcome if the re-audit came back clean
/// (the engine stays up), `None` if the damage survived — the caller
/// reports corruption and poisons as before. Errors from the ladder
/// itself (e.g. an unreadable checkpoint under cache recovery) also
/// resolve to `None` rather than aborting the caller's corruption
/// handling — in particular, under read-logging schemes
/// [`repair_regions`] refuses outright (carried corruption needs the
/// delete-transaction model), so the legacy poison-and-recover path
/// runs unchanged there.
pub(crate) fn auto_repair(db: &Arc<Db>, report: &AuditReport) -> Result<Option<RepairOutcome>> {
    if db.prot.parity().is_none() || report.clean() {
        return Ok(None);
    }
    let mut regions: Vec<RegionId> = report.corrupt.iter().map(|c| c.region).collect();
    regions.sort_unstable();
    regions.dedup();
    let outcome = match repair_regions(db, &regions) {
        Ok(o) => o,
        Err(DaliError::Crashed) => return Err(DaliError::Crashed),
        Err(_) => return Ok(None),
    };
    let recheck = db.prot.audit_regions(&db.image, &regions)?;
    if recheck.clean() {
        Ok(Some(outcome))
    } else {
        Ok(None)
    }
}
