//! A Dali-style main-memory storage manager with codeword corruption
//! protection and delete-transaction corruption recovery.
//!
//! This crate is the reproduction of the system evaluated in *"Using
//! Codewords to Protect Database Data from a Class of Software Errors"*
//! (ICDE 1999): a main-memory database with in-place updates through a
//! prescribed `beginUpdate`/`endUpdate` interface, multi-level recovery
//! with per-transaction local logging, ping-pong checkpointing — plus the
//! paper's contribution layered on top: codeword maintenance, read
//! prechecking, asynchronous audits, read logging, and recovery that
//! deletes corruption-carrying transactions from history.
//!
//! # Quick start
//!
//! ```no_run
//! use dali_engine::DaliEngine;
//! use dali_common::{DaliConfig, ProtectionScheme};
//!
//! let config = DaliConfig::small("/tmp/mydb")
//!     .with_scheme(ProtectionScheme::ReadLogging);
//! let (db, _outcome) = DaliEngine::create(config).unwrap();
//! let accounts = db.create_table("accounts", 100, 10_000).unwrap();
//!
//! let txn = db.begin().unwrap();
//! let rec = txn.insert(accounts, &[0u8; 100]).unwrap();
//! let value = txn.read_vec(rec).unwrap();
//! assert_eq!(value.len(), 100);
//! txn.commit().unwrap();
//! ```

pub mod att;
pub mod catalog;
pub mod ckpt;
pub mod corruption;
pub mod db;
pub mod heap;
pub mod lock;
pub mod maintenance;
pub mod recovery;
pub mod repair;
pub mod trace;
pub mod txn;

pub use ckpt::CheckpointOutcome;
pub use corruption::{CorruptionMarker, RangeSet};
pub use lock::{LockManager, LockMode};
pub use recovery::{RecoveryMode, RecoveryOutcome};
pub use repair::RepairOutcome;
pub use txn::TxnHandle;

use dali_codeword::AuditReport;
use dali_common::{DaliConfig, DaliError, DbAddr, Result, TableId};
use dali_wal::record::LogRecord;
use db::Db;
use std::sync::Arc;

/// The public engine handle.
///
/// Cloning is cheap (the engine state is shared); the database shuts down
/// when the last handle is dropped. [`DaliEngine::crash`] simulates a
/// process crash: the in-memory image and unflushed log tail are lost,
/// the on-disk checkpoint images and stable log survive, and a subsequent
/// [`DaliEngine::open`] runs restart recovery.
#[derive(Clone)]
pub struct DaliEngine {
    db: Arc<Db>,
}

impl DaliEngine {
    /// Create a fresh database in `config.dir`.
    pub fn create(config: DaliConfig) -> Result<(DaliEngine, RecoveryOutcome)> {
        let (db, outcome) = recovery::create(config)?;
        Ok((DaliEngine { db }, outcome))
    }

    /// Open an existing database, running restart recovery (normal or
    /// corruption mode, depending on what brought the database down and
    /// which protection scheme is configured).
    pub fn open(config: DaliConfig) -> Result<(DaliEngine, RecoveryOutcome)> {
        let (db, outcome) = recovery::restart(config)?;
        Ok((DaliEngine { db }, outcome))
    }

    /// Open if checkpoints exist, otherwise create.
    pub fn open_or_create(config: DaliConfig) -> Result<(DaliEngine, RecoveryOutcome)> {
        if Db::anchor_path(&config.dir).exists() {
            Self::open(config)
        } else {
            Self::create(config)
        }
    }

    /// Prior-state recovery (paper §4.1's second model): reopen the
    /// database at the transaction-consistent state it had at log
    /// position `upto`, discarding (and truncating) everything after it.
    /// Capture candidate positions with [`current_lsn`](Self::current_lsn).
    pub fn open_prior_state(
        config: DaliConfig,
        upto: dali_common::Lsn,
    ) -> Result<(DaliEngine, RecoveryOutcome)> {
        let (db, outcome) = recovery::restore_prior_state(config, upto)?;
        Ok((DaliEngine { db }, outcome))
    }

    /// The current end of the system log. Flushes first, so the returned
    /// position is stable and usable as a prior-state recovery point.
    pub fn current_lsn(&self) -> Result<dali_common::Lsn> {
        self.db.check_alive()?;
        self.db.syslog.flush(false)
    }

    /// Trace the taint closure of user-identified *logically* corrupt
    /// transactions through the read log (paper §7). Requires a
    /// read-logging scheme to be meaningful; the report's
    /// `read_records_seen` tells the caller whether the trace could see
    /// reads at all.
    pub fn trace_logical_corruption(
        &self,
        seeds: &[dali_common::TxnId],
    ) -> Result<trace::TaintReport> {
        self.db.check_alive()?;
        self.db.syslog.flush(false)?;
        trace::trace_taint(
            &Db::log_path(&self.db.config.dir),
            dali_common::Lsn::ZERO,
            seeds,
            self.db.config.codeword_algebra,
        )
    }

    /// Begin a transaction.
    pub fn begin(&self) -> Result<TxnHandle> {
        txn::TxnHandle::begin(Arc::clone(&self.db))
    }

    /// Create a table of fixed-size records (auto-committed DDL).
    ///
    /// `rec_size` must be a multiple of 4 (records are word-aligned for
    /// codeword maintenance). Allocation bitmaps get their own pages,
    /// separate from record data (the Dali layout, paper §2).
    pub fn create_table(&self, name: &str, rec_size: usize, capacity: usize) -> Result<TableId> {
        self.db.check_alive()?;
        let _q = self.db.quiesce.read();
        let mut catalog = self.db.catalog.write();
        let meta = catalog.plan_table_with_layout(
            name,
            rec_size,
            capacity,
            self.db.config.page_size,
            self.db.config.db_bytes(),
            self.db.config.colocate_control,
        )?;
        let table = meta.table;
        self.db.syslog.append(&LogRecord::CreateTable {
            table,
            name: name.to_string(),
            rec_size: rec_size as u32,
            capacity: capacity as u64,
            bitmap_base: meta.bitmap_base,
            data_base: meta.data_base,
        });
        self.db.syslog.flush(self.db.config.sync_commit)?;
        catalog.register(meta.clone())?;
        self.db
            .heaps
            .write()
            .push(Arc::new(heap::HeapRuntime::new(meta)));
        Ok(table)
    }

    /// Look up a table id by name.
    pub fn table(&self, name: &str) -> Result<TableId> {
        Ok(self.db.catalog.read().by_name(name)?.table)
    }

    /// Record size of a table.
    pub fn record_size(&self, table: TableId) -> Result<usize> {
        Ok(self.db.heap(table)?.meta().rec_size)
    }

    /// Number of allocated records in a table.
    pub fn record_count(&self, table: TableId) -> Result<usize> {
        Ok(self.db.heap(table)?.in_use())
    }

    /// Take a checkpoint (with audit certification when the scheme
    /// maintains codewords, paper §4.2).
    pub fn checkpoint(&self) -> Result<CheckpointOutcome> {
        ckpt::checkpoint(&self.db)
    }

    /// Run a full-database audit (paper §3.2). On failure the corruption
    /// marker is written and the engine is poisoned; reopen to recover.
    pub fn audit(&self) -> Result<AuditReport> {
        ckpt::audit(&self.db)
    }

    /// Online cache recovery (paper §4.2 cache-recovery model): repair
    /// the given directly-corrupted ranges in place from the certified
    /// checkpoint and the stable log. All active transactions are rolled
    /// back. Returns the number of redo records replayed.
    pub fn cache_repair(&self, ranges: &[(DbAddr, usize)]) -> Result<usize> {
        corruption::cache_repair(&self.db, ranges)
    }

    /// Online parity repair of one protection region: rebuild it in place
    /// from its parity group (no WAL replay, no transaction disturbed),
    /// falling back to online cache recovery when the group's parity
    /// cannot be trusted. See [`repair::RepairOutcome`].
    pub fn repair(&self, region: dali_codeword::RegionId) -> Result<RepairOutcome> {
        repair::repair_region(&self.db, region)
    }

    /// Parity-stripe gauges and counters (zeroed when the stripe is
    /// disabled).
    pub fn parity_stats(&self) -> dali_codeword::ParityStatsSnapshot {
        self.db.prot.parity_stats()
    }

    /// Simulate a process crash: the in-memory image and any unflushed
    /// log tail are gone; files survive. All other handles to this
    /// database become unusable.
    pub fn crash(self) {
        self.db.poison();
    }

    /// Engine statistics.
    pub fn stats(&self) -> &db::EngineStats {
        &self.db.stats
    }

    /// System-log flush/fsync counters (group-commit amortization:
    /// `fsyncs / durable_commits` is the fsyncs-per-commit metric).
    pub fn log_stats(&self) -> dali_wal::SyncStats {
        self.db.syslog.sync_stats()
    }

    /// mprotect statistics (Hardware Protection scheme, §5.3).
    pub fn protect_stats(&self) -> &dali_mem::ProtectStats {
        self.db.protector.stats()
    }

    /// Deferred-maintenance dirty-set gauges and counters (zeroed for
    /// non-deferred schemes).
    pub fn deferred_stats(&self) -> dali_codeword::DeferredStatsSnapshot {
        self.db.prot.deferred_stats()
    }

    /// The active configuration.
    pub fn config(&self) -> &DaliConfig {
        &self.db.config
    }

    /// Codeword space overhead of the current geometry (e.g. 6.25% for
    /// 64-byte regions).
    pub fn codeword_space_overhead(&self) -> f64 {
        if self.db.config.scheme.maintains_codewords() {
            self.db.prot.geometry().space_overhead()
        } else {
            0.0
        }
    }

    /// Direct access to the raw database image **bypassing every
    /// protection mechanism** — this is the door through which addressing
    /// errors arrive. Used by the fault injector.
    pub fn raw_image(&self) -> Arc<dali_mem::DbImage> {
        Arc::clone(&self.db.image)
    }

    /// Is a write to the page containing `addr` currently permitted by
    /// the hardware-protection scheme? (Always true for other schemes.)
    pub fn page_writable(&self, addr: DbAddr) -> bool {
        let page = dali_common::PageId::containing(addr, self.db.config.page_size);
        self.db.protector.is_writable(page)
    }

    /// Address of a record's data in the image (for targeted fault
    /// injection in tests and experiments).
    pub fn record_addr(&self, rec: dali_common::RecId) -> Result<DbAddr> {
        let heap = self.db.heap(rec.table)?;
        if rec.slot.0 as usize >= heap.meta().capacity {
            return Err(DaliError::NotFound(format!("record {rec}")));
        }
        Ok(heap.meta().slot_addr(rec.slot))
    }

    /// Internal: shared state (used by sibling crates in this workspace).
    #[doc(hidden)]
    pub fn db(&self) -> &Arc<Db> {
        &self.db
    }
}
