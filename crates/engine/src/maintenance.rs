//! Background deferred-maintenance drainer.
//!
//! The deferred scheme lets the codeword table lag the image by whatever
//! sits in the sharded dirty set. Audits catch up incrementally on their
//! own, and the per-shard watermark backstops runaway growth, but
//! between audits an unbounded lag means more catch-up work at the worst
//! time (inside the audit's latch). When
//! `DaliConfig::deferred_drain_interval` is set, this thread drains the
//! whole dirty set every interval, shard by shard — no latches, no
//! quiesce: queued deltas are always safe to apply because each was
//! enqueued strictly after its image bytes landed, and the table write
//! is an atomic `fetch_xor`.
//!
//! Lifecycle: the thread holds only a `Weak<Db>`, upgrading per tick, so
//! it never keeps the database alive; it exits when the last engine
//! handle drops or the engine is poisoned (crash simulation).

use crate::db::Db;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Weak};

/// Spawn the drainer for `db` if a drain interval is configured and
/// there is something to drain: the scheme defers codeword maintenance,
/// or the parity stripe is enabled (parity deltas queue under *every*
/// codeword scheme — eager schemes still need their stripe drained
/// between audits). Detached: exits on its own when the database goes
/// away.
pub(crate) fn spawn_drainer(db: &Arc<Db>) {
    let drains_something = db.config.scheme.defers_maintenance() || db.prot.parity().is_some();
    let interval = match db.config.deferred_drain_interval {
        Some(i) if drains_something && !i.is_zero() => i,
        _ => return,
    };
    let weak: Weak<Db> = Arc::downgrade(db);
    let _ = std::thread::Builder::new()
        .name("dali-deferred-drain".into())
        .spawn(move || loop {
            std::thread::sleep(interval);
            let Some(db) = weak.upgrade() else { break };
            if db.crashed.load(Ordering::Acquire) {
                break;
            }
            db.prot.drain_deferred();
        });
}

#[cfg(test)]
mod tests {
    use dali_common::{DaliConfig, ProtectionScheme};
    use dali_testutil::TempDir;
    use std::time::{Duration, Instant};

    #[test]
    fn background_drainer_empties_dirty_set() {
        let tmp = TempDir::new("bg-drain");
        let config = DaliConfig::small(tmp.path())
            .with_scheme(ProtectionScheme::DeferredMaintenance)
            .with_deferred_drain_interval(Some(Duration::from_millis(1)));
        let (engine, _) = crate::DaliEngine::create(config).unwrap();
        let t = engine.create_table("t", 16, 64).unwrap();
        let txn = engine.begin().unwrap();
        let rec = txn.insert(t, &[7u8; 16]).unwrap();
        txn.update(rec, &[8u8; 16]).unwrap();
        txn.commit().unwrap();
        // The drainer should clear the queue without any audit.
        let deadline = Instant::now() + Duration::from_secs(5);
        while engine.deferred_stats().pending_deltas > 0 {
            assert!(Instant::now() < deadline, "drainer never caught up");
            std::thread::sleep(Duration::from_millis(2));
        }
        let stats = engine.deferred_stats();
        assert_eq!(stats.dirty_regions, 0);
        assert!(stats.drains > 0);
    }

    #[test]
    fn drainer_disabled_when_interval_none() {
        let tmp = TempDir::new("bg-drain-off");
        let config = DaliConfig::small(tmp.path())
            .with_scheme(ProtectionScheme::DeferredMaintenance)
            .with_deferred_drain_interval(None)
            .with_deferred_watermark(0);
        let (engine, _) = crate::DaliEngine::create(config).unwrap();
        let t = engine.create_table("t", 16, 64).unwrap();
        let txn = engine.begin().unwrap();
        txn.insert(t, &[7u8; 16]).unwrap();
        txn.commit().unwrap();
        std::thread::sleep(Duration::from_millis(20));
        assert!(
            engine.deferred_stats().pending_deltas > 0,
            "no drainer, no watermark: deltas stay queued until an audit"
        );
        assert!(engine.audit().unwrap().clean());
        assert_eq!(engine.deferred_stats().pending_deltas, 0);
    }
}
