//! Heap runtime state: slot allocation over the image bitmap.
//!
//! The *authoritative* allocation state is the bitmap in the database
//! image (updated through the prescribed physical-update interface so it
//! is logged, checkpointed, and codeword-protected like any other data).
//! `HeapRuntime` keeps an in-memory mirror used to *reserve* slots:
//!
//! * an insert reserves a mirror bit before setting the image bit, so two
//!   concurrent inserts never pick the same slot;
//! * a delete clears the mirror bit only when the deleting transaction
//!   finishes (deferred free), so a slot freed by an uncommitted delete
//!   cannot be re-allocated out from under a potential rollback.
//!
//! The mirror is rebuilt from the image after recovery.

use crate::catalog::HeapMeta;
use dali_common::{DaliError, Result, SlotId};
use dali_mem::DbImage;
use parking_lot::Mutex;

struct AllocState {
    /// One bit per slot; set = allocated or reserved.
    mirror: Vec<u32>,
    /// Rotating scan cursor (word index).
    cursor: usize,
    /// Number of set bits.
    in_use: usize,
}

/// Runtime allocation state for one heap.
pub struct HeapRuntime {
    meta: HeapMeta,
    alloc: Mutex<AllocState>,
}

impl HeapRuntime {
    /// Fresh runtime with an empty mirror (matches a zeroed image).
    pub fn new(meta: HeapMeta) -> HeapRuntime {
        let words = meta.capacity.div_ceil(32);
        HeapRuntime {
            meta,
            alloc: Mutex::new(AllocState {
                mirror: vec![0; words],
                cursor: 0,
                in_use: 0,
            }),
        }
    }

    /// Table metadata.
    pub fn meta(&self) -> &HeapMeta {
        &self.meta
    }

    /// Number of allocated (or reserved) slots.
    pub fn in_use(&self) -> usize {
        self.alloc.lock().in_use
    }

    /// Rebuild the mirror from the image bitmap (after recovery). Walks
    /// slot by slot through [`HeapMeta::bit_word_addr`] so it works for
    /// both allocation layouts.
    pub fn rebuild_from_image(&self, image: &DbImage) -> Result<()> {
        let mut st = self.alloc.lock();
        for w in st.mirror.iter_mut() {
            *w = 0;
        }
        let mut in_use = 0;
        for slot in 0..self.meta.capacity {
            let (addr, bit) = self.meta.bit_word_addr(SlotId(slot as u32));
            let word = image.arena().read_u32(addr.0)?;
            if word & (1 << bit) != 0 {
                st.mirror[slot / 32] |= 1 << (slot % 32);
                in_use += 1;
            }
        }
        st.cursor = 0;
        st.in_use = in_use;
        Ok(())
    }

    /// Reserve a free slot (sets its mirror bit). The caller must then set
    /// the image bit through the update interface, or call
    /// [`release`](Self::release) if the insert is abandoned.
    pub fn reserve(&self) -> Result<SlotId> {
        let mut st = self.alloc.lock();
        if st.in_use >= self.meta.capacity {
            return Err(DaliError::OutOfSpace(format!(
                "heap '{}' is full ({} slots)",
                self.meta.name, self.meta.capacity
            )));
        }
        let words = st.mirror.len();
        for i in 0..words {
            let w = (st.cursor + i) % words;
            if st.mirror[w] != u32::MAX {
                let bit = (!st.mirror[w]).trailing_zeros();
                let slot = (w * 32) as u32 + bit;
                if (slot as usize) < self.meta.capacity {
                    st.mirror[w] |= 1 << bit;
                    st.in_use += 1;
                    st.cursor = w;
                    return Ok(SlotId(slot));
                }
                // Tail word with only out-of-capacity bits free; skip it.
            }
        }
        Err(DaliError::OutOfSpace(format!(
            "heap '{}' is full ({} slots)",
            self.meta.name, self.meta.capacity
        )))
    }

    /// Reserve a *specific* slot (recovery-time re-insert during logical
    /// undo of a delete). Errors if already reserved.
    pub fn reserve_slot(&self, slot: SlotId) -> Result<()> {
        let mut st = self.alloc.lock();
        let (w, b) = (slot.0 as usize / 32, slot.0 % 32);
        if st.mirror[w] & (1 << b) != 0 {
            return Err(DaliError::InvalidArg(format!(
                "slot {} of '{}' already allocated",
                slot.0, self.meta.name
            )));
        }
        st.mirror[w] |= 1 << b;
        st.in_use += 1;
        Ok(())
    }

    /// Release a slot's mirror bit (deferred free at transaction end, or
    /// abandoning a reservation).
    pub fn release(&self, slot: SlotId) {
        let mut st = self.alloc.lock();
        let (w, b) = (slot.0 as usize / 32, slot.0 % 32);
        if st.mirror[w] & (1 << b) != 0 {
            st.mirror[w] &= !(1 << b);
            st.in_use -= 1;
        }
    }

    /// Run `f` while holding the heap's allocation mutex. Used to
    /// serialize read-modify-write cycles on shared bitmap words (two
    /// inserts allocating different slots of the same word must not race
    /// on the word itself).
    pub fn with_alloc_locked<R>(&self, f: impl FnOnce() -> R) -> R {
        let _g = self.alloc.lock();
        f()
    }

    /// Is the slot allocated *in the image* (authoritative, what readers
    /// see)?
    pub fn is_allocated_in_image(&self, image: &DbImage, slot: SlotId) -> Result<bool> {
        if slot.0 as usize >= self.meta.capacity {
            return Err(DaliError::NotFound(format!(
                "slot {} out of range for '{}'",
                slot.0, self.meta.name
            )));
        }
        let (addr, bit) = self.meta.bit_word_addr(slot);
        let word = image.arena().read_u32(addr.0)?;
        Ok(word & (1 << bit) != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;

    fn setup(cap: usize) -> (DbImage, HeapRuntime) {
        let image = DbImage::new(64, 4096).unwrap();
        let mut cat = Catalog::new();
        let meta = cat.plan_table("t", 8, cap, 4096, image.len()).unwrap();
        cat.register(meta.clone()).unwrap();
        (image, HeapRuntime::new(meta))
    }

    #[test]
    fn reserve_returns_distinct_slots() {
        let (_img, h) = setup(100);
        let a = h.reserve().unwrap();
        let b = h.reserve().unwrap();
        let c = h.reserve().unwrap();
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_eq!(h.in_use(), 3);
    }

    #[test]
    fn full_heap_rejects() {
        let (_img, h) = setup(3);
        for _ in 0..3 {
            h.reserve().unwrap();
        }
        assert!(matches!(h.reserve(), Err(DaliError::OutOfSpace(_))));
    }

    #[test]
    fn capacity_not_word_multiple() {
        let (_img, h) = setup(35);
        let mut slots = vec![];
        for _ in 0..35 {
            slots.push(h.reserve().unwrap().0);
        }
        slots.sort_unstable();
        assert_eq!(slots, (0..35).collect::<Vec<_>>());
        assert!(h.reserve().is_err());
    }

    #[test]
    fn release_allows_reuse() {
        let (_img, h) = setup(2);
        let a = h.reserve().unwrap();
        let _b = h.reserve().unwrap();
        assert!(h.reserve().is_err());
        h.release(a);
        assert_eq!(h.reserve().unwrap(), a);
    }

    #[test]
    fn reserve_specific_slot() {
        let (_img, h) = setup(64);
        h.reserve_slot(SlotId(40)).unwrap();
        assert!(h.reserve_slot(SlotId(40)).is_err());
        assert_eq!(h.in_use(), 1);
        // General reservation skips it.
        for _ in 0..63 {
            let s = h.reserve().unwrap();
            assert_ne!(s, SlotId(40));
        }
        assert!(h.reserve().is_err());
    }

    #[test]
    fn image_bit_is_authoritative_for_readers() {
        let (img, h) = setup(64);
        let slot = SlotId(5);
        assert!(!h.is_allocated_in_image(&img, slot).unwrap());
        // Simulate the physical update setting the image bit.
        let (addr, bit) = h.meta().bit_word_addr(slot);
        img.write(addr, &(1u32 << bit).to_le_bytes()).unwrap();
        assert!(h.is_allocated_in_image(&img, slot).unwrap());
        assert!(!h.is_allocated_in_image(&img, SlotId(6)).unwrap());
    }

    #[test]
    fn rebuild_from_image_counts_bits() {
        let (img, h) = setup(64);
        // Set bits for slots 0 and 33 directly in the image.
        let (a0, b0) = h.meta().bit_word_addr(SlotId(0));
        img.write(a0, &(1u32 << b0).to_le_bytes()).unwrap();
        let (a1, b1) = h.meta().bit_word_addr(SlotId(33));
        img.write(a1, &(1u32 << b1).to_le_bytes()).unwrap();
        h.rebuild_from_image(&img).unwrap();
        assert_eq!(h.in_use(), 2);
        // Reservation avoids the occupied slots.
        let s = h.reserve().unwrap();
        assert_ne!(s, SlotId(0));
        assert_ne!(s, SlotId(33));
    }

    #[test]
    fn out_of_range_slot_errors() {
        let (img, h) = setup(10);
        assert!(h.is_allocated_in_image(&img, SlotId(10)).is_err());
    }

    #[test]
    fn concurrent_reservations_are_unique() {
        let (_img, h) = setup(1024);
        let h = std::sync::Arc::new(h);
        let mut handles = vec![];
        for _ in 0..8 {
            let h = std::sync::Arc::clone(&h);
            handles.push(std::thread::spawn(move || {
                (0..100).map(|_| h.reserve().unwrap().0).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u32> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 800, "duplicate slot handed out");
    }
}
