//! Table catalog and database space layout.
//!
//! Each table is a heap of fixed-size slots. Following Dali (paper §2),
//! *allocation information is not stored on the same page as tuple data*:
//! a table gets two page-aligned extents in the image — an allocation
//! bitmap extent and a data extent. (This is why the hardware-protection
//! scheme touches ~11 pages per TPC-B operation, §5.3: the bitmap pages
//! are distinct from the tuple pages.)
//!
//! The catalog itself lives outside the image: it is persisted in
//! checkpoint metadata and re-created from `CreateTable` log records during
//! recovery.

use bytes::{Buf, BufMut, BytesMut};
use dali_common::{DaliError, DbAddr, Result, SlotId, TableId};
use std::collections::HashMap;

/// Physical layout of a heap's allocation information.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum HeapLayout {
    /// Dali layout (the default): the allocation bitmap lives in its own
    /// page-aligned extent, never sharing a page with record data.
    Separate,
    /// Page-based layout (the §5.3 ablation): every data page begins with
    /// a slot-allocation header for the records *on that page*, so an
    /// insert touches a single page.
    PageLocal {
        /// Records stored per page.
        records_per_page: u32,
        /// Bytes reserved at the start of each page for the allocation
        /// header (whole words, 8-byte aligned).
        header_bytes: u32,
        /// Page size the layout was computed for.
        page_size: u32,
    },
}

impl HeapLayout {
    /// Compute the page-local layout for a record size: the largest
    /// per-page record count whose allocation header still fits.
    pub fn page_local(rec_size: usize, page_size: usize) -> Result<HeapLayout> {
        let mut rpp = (page_size / rec_size).max(1);
        loop {
            if rpp == 0 {
                return Err(DaliError::InvalidArg(format!(
                    "record size {rec_size} too large for page-local layout on {page_size}-byte pages"
                )));
            }
            let header = dali_common::align::round_up(rpp.div_ceil(32) * 4, 8);
            if header + rpp * rec_size <= page_size {
                return Ok(HeapLayout::PageLocal {
                    records_per_page: rpp as u32,
                    header_bytes: header as u32,
                    page_size: page_size as u32,
                });
            }
            rpp -= 1;
        }
    }
}

/// Metadata of one table (heap file).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HeapMeta {
    pub table: TableId,
    pub name: String,
    /// Fixed record size in bytes (multiple of 4 so records are
    /// word-aligned for codeword maintenance).
    pub rec_size: usize,
    /// Maximum number of slots.
    pub capacity: usize,
    /// Base of the allocation bitmap extent (one bit per slot). For
    /// [`HeapLayout::PageLocal`] this equals `data_base` (the headers are
    /// embedded in the data pages).
    pub bitmap_base: DbAddr,
    /// Base of the record data extent.
    pub data_base: DbAddr,
    /// Allocation-information layout.
    pub layout: HeapLayout,
}

impl HeapMeta {
    /// Address of a slot's record data.
    #[inline]
    pub fn slot_addr(&self, slot: SlotId) -> DbAddr {
        debug_assert!((slot.0 as usize) < self.capacity);
        match self.layout {
            HeapLayout::Separate => self.data_base.add(slot.0 as usize * self.rec_size),
            HeapLayout::PageLocal {
                records_per_page,
                header_bytes,
                page_size,
            } => {
                let page = slot.0 / records_per_page;
                let within = slot.0 % records_per_page;
                self.data_base.add(
                    page as usize * page_size as usize
                        + header_bytes as usize
                        + within as usize * self.rec_size,
                )
            }
        }
    }

    /// Address of the bitmap *word* holding a slot's allocation bit, and
    /// the bit index within it. Bitmap words are `u32` so bitmap updates
    /// are word-aligned physical updates.
    #[inline]
    pub fn bit_word_addr(&self, slot: SlotId) -> (DbAddr, u32) {
        match self.layout {
            HeapLayout::Separate => {
                let word = slot.0 as usize / 32;
                let bit = slot.0 % 32;
                (self.bitmap_base.add(word * 4), bit)
            }
            HeapLayout::PageLocal {
                records_per_page,
                page_size,
                ..
            } => {
                let page = slot.0 / records_per_page;
                let within = slot.0 % records_per_page;
                let word = within as usize / 32;
                let bit = within % 32;
                (
                    self.data_base
                        .add(page as usize * page_size as usize + word * 4),
                    bit,
                )
            }
        }
    }

    /// Bytes of bitmap storage (rounded up to whole words; zero for the
    /// page-local layout, whose headers live inside the data extent).
    pub fn bitmap_bytes(&self) -> usize {
        match self.layout {
            HeapLayout::Separate => self.capacity.div_ceil(32) * 4,
            HeapLayout::PageLocal { .. } => 0,
        }
    }

    /// Bytes of data storage (including embedded page headers for the
    /// page-local layout).
    pub fn data_bytes(&self) -> usize {
        match self.layout {
            HeapLayout::Separate => self.capacity * self.rec_size,
            HeapLayout::PageLocal {
                records_per_page,
                page_size,
                ..
            } => self.capacity.div_ceil(records_per_page as usize) * page_size as usize,
        }
    }

    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.table.0);
        buf.put_u32_le(self.name.len() as u32);
        buf.extend_from_slice(self.name.as_bytes());
        buf.put_u32_le(self.rec_size as u32);
        buf.put_u64_le(self.capacity as u64);
        buf.put_u64_le(self.bitmap_base.0 as u64);
        buf.put_u64_le(self.data_base.0 as u64);
        match self.layout {
            HeapLayout::Separate => buf.put_u8(0),
            HeapLayout::PageLocal {
                records_per_page,
                header_bytes,
                page_size,
            } => {
                buf.put_u8(1);
                buf.put_u32_le(records_per_page);
                buf.put_u32_le(header_bytes);
                buf.put_u32_le(page_size);
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<HeapMeta> {
        let table = TableId(get_u32(buf)?);
        let name_len = get_u32(buf)? as usize;
        if buf.len() < name_len {
            return Err(DaliError::RecoveryFailed("catalog name truncated".into()));
        }
        let name = String::from_utf8(buf[..name_len].to_vec())
            .map_err(|_| DaliError::RecoveryFailed("catalog name not utf-8".into()))?;
        buf.advance(name_len);
        let rec_size = get_u32(buf)? as usize;
        let capacity = get_u64(buf)? as usize;
        let bitmap_base = DbAddr(get_u64(buf)? as usize);
        let data_base = DbAddr(get_u64(buf)? as usize);
        let layout = match get_u8(buf)? {
            0 => HeapLayout::Separate,
            1 => HeapLayout::PageLocal {
                records_per_page: get_u32(buf)?,
                header_bytes: get_u32(buf)?,
                page_size: get_u32(buf)?,
            },
            t => {
                return Err(DaliError::RecoveryFailed(format!(
                    "unknown heap layout tag {t}"
                )))
            }
        };
        Ok(HeapMeta {
            table,
            name,
            rec_size,
            capacity,
            bitmap_base,
            data_base,
            layout,
        })
    }
}

/// The table catalog plus the extent-allocation watermark.
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    tables: Vec<HeapMeta>,
    by_name: HashMap<String, TableId>,
    /// First unallocated byte of the image.
    watermark: usize,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True if no tables exist.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Current space watermark.
    pub fn watermark(&self) -> usize {
        self.watermark
    }

    /// Plan extents for a new table without registering it: returns the
    /// `HeapMeta` the table would get. `page_size` aligns extents so
    /// bitmap and data never share a page; `image_bytes` bounds the space.
    pub fn plan_table(
        &self,
        name: &str,
        rec_size: usize,
        capacity: usize,
        page_size: usize,
        image_bytes: usize,
    ) -> Result<HeapMeta> {
        self.plan_table_with_layout(name, rec_size, capacity, page_size, image_bytes, false)
    }

    /// Like [`plan_table`](Self::plan_table), but with a layout choice:
    /// `colocate` selects [`HeapLayout::PageLocal`] (per-page allocation
    /// headers embedded in the data pages, so operations touch fewer
    /// pages) — the page-based layout of the §5.3 ablation.
    pub fn plan_table_with_layout(
        &self,
        name: &str,
        rec_size: usize,
        capacity: usize,
        page_size: usize,
        image_bytes: usize,
        colocate: bool,
    ) -> Result<HeapMeta> {
        if self.by_name.contains_key(name) {
            return Err(DaliError::InvalidArg(format!(
                "table '{name}' already exists"
            )));
        }
        if rec_size == 0 || !rec_size.is_multiple_of(4) {
            return Err(DaliError::InvalidArg(format!(
                "record size {rec_size} must be a positive multiple of 4"
            )));
        }
        if capacity == 0 || capacity > u32::MAX as usize {
            return Err(DaliError::InvalidArg(format!("bad capacity {capacity}")));
        }
        let table = TableId(self.tables.len() as u32);
        let (layout, bitmap_base, data_base) = if colocate {
            // Page-based layout: per-page allocation headers embedded in
            // the data pages themselves.
            let layout = HeapLayout::page_local(rec_size, page_size)?;
            let d = DbAddr(dali_common::align::round_up(self.watermark, page_size));
            (layout, d, d)
        } else {
            // Dali layout: control information on its own pages.
            let bitmap_bytes = capacity.div_ceil(32) * 4;
            let b = DbAddr(dali_common::align::round_up(self.watermark, page_size));
            let d = DbAddr(dali_common::align::round_up(b.0 + bitmap_bytes, page_size));
            (HeapLayout::Separate, b, d)
        };
        let meta = HeapMeta {
            table,
            name: name.to_string(),
            rec_size,
            capacity,
            bitmap_base,
            data_base,
            layout,
        };
        let end = meta.data_base.0 + meta.data_bytes();
        if end > image_bytes {
            return Err(DaliError::OutOfSpace(format!(
                "table '{name}' needs {end} bytes, image has {image_bytes}"
            )));
        }
        Ok(meta)
    }

    /// Register a planned table (or one replayed from the log). The meta's
    /// id must be the next free id; recovery may pass an id that already
    /// exists, in which case the call is an idempotent no-op when the
    /// metadata matches.
    pub fn register(&mut self, meta: HeapMeta) -> Result<()> {
        if let Some(existing) = self.tables.get(meta.table.0 as usize) {
            if *existing == meta {
                return Ok(()); // replayed CreateTable
            }
            return Err(DaliError::InvalidArg(format!(
                "table id {} already registered with different metadata",
                meta.table
            )));
        }
        if meta.table.0 as usize != self.tables.len() {
            return Err(DaliError::InvalidArg(format!(
                "non-contiguous table id {}",
                meta.table
            )));
        }
        let end = meta.data_base.0 + meta.data_bytes();
        self.watermark = self.watermark.max(end);
        self.by_name.insert(meta.name.clone(), meta.table);
        self.tables.push(meta);
        Ok(())
    }

    /// Look up a table by id.
    pub fn get(&self, table: TableId) -> Result<&HeapMeta> {
        self.tables
            .get(table.0 as usize)
            .ok_or_else(|| DaliError::NotFound(format!("table {table}")))
    }

    /// Look up a table by name.
    pub fn by_name(&self, name: &str) -> Result<&HeapMeta> {
        let id = self
            .by_name
            .get(name)
            .ok_or_else(|| DaliError::NotFound(format!("table '{name}'")))?;
        self.get(*id)
    }

    /// Iterate all tables.
    pub fn iter(&self) -> impl Iterator<Item = &HeapMeta> {
        self.tables.iter()
    }

    /// Serialize for checkpoint metadata.
    pub fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.tables.len() as u32);
        for t in &self.tables {
            t.encode(buf);
        }
        buf.put_u64_le(self.watermark as u64);
    }

    /// Deserialize from checkpoint metadata.
    pub fn decode(buf: &mut &[u8]) -> Result<Catalog> {
        let n = get_u32(buf)? as usize;
        let mut cat = Catalog::new();
        for _ in 0..n {
            let meta = HeapMeta::decode(buf)?;
            cat.register(meta)?;
        }
        cat.watermark = get_u64(buf)? as usize;
        Ok(cat)
    }
}

fn get_u8(buf: &mut &[u8]) -> Result<u8> {
    if buf.is_empty() {
        return Err(DaliError::RecoveryFailed("catalog truncated".into()));
    }
    Ok(buf.get_u8())
}

fn get_u32(buf: &mut &[u8]) -> Result<u32> {
    if buf.len() < 4 {
        return Err(DaliError::RecoveryFailed("catalog truncated".into()));
    }
    Ok(buf.get_u32_le())
}

fn get_u64(buf: &mut &[u8]) -> Result<u64> {
    if buf.len() < 8 {
        return Err(DaliError::RecoveryFailed("catalog truncated".into()));
    }
    Ok(buf.get_u64_le())
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAGE: usize = 4096;
    const IMAGE: usize = 4096 * 256;

    fn plan_and_register(cat: &mut Catalog, name: &str, rec: usize, cap: usize) -> HeapMeta {
        let m = cat.plan_table(name, rec, cap, PAGE, IMAGE).unwrap();
        cat.register(m.clone()).unwrap();
        m
    }

    #[test]
    fn extents_are_page_aligned_and_disjoint() {
        let mut cat = Catalog::new();
        let a = plan_and_register(&mut cat, "a", 100, 1000);
        let b = plan_and_register(&mut cat, "b", 8, 64);
        assert_eq!(a.bitmap_base.0 % PAGE, 0);
        assert_eq!(a.data_base.0 % PAGE, 0);
        // Bitmap and data never share a page.
        assert!(a.data_base.0 >= a.bitmap_base.0 + PAGE);
        // Table b starts after table a.
        assert!(b.bitmap_base.0 >= a.data_base.0 + a.data_bytes());
    }

    #[test]
    fn slot_and_bitword_addresses() {
        let mut cat = Catalog::new();
        let m = plan_and_register(&mut cat, "t", 100, 1000);
        assert_eq!(m.slot_addr(SlotId(0)), m.data_base);
        assert_eq!(m.slot_addr(SlotId(3)).0, m.data_base.0 + 300);
        let (w0, b0) = m.bit_word_addr(SlotId(0));
        assert_eq!((w0, b0), (m.bitmap_base, 0));
        let (w, b) = m.bit_word_addr(SlotId(37));
        assert_eq!(w.0, m.bitmap_base.0 + 4);
        assert_eq!(b, 5);
    }

    #[test]
    fn duplicate_name_rejected() {
        let mut cat = Catalog::new();
        plan_and_register(&mut cat, "t", 8, 10);
        assert!(cat.plan_table("t", 8, 10, PAGE, IMAGE).is_err());
    }

    #[test]
    fn bad_record_size_rejected() {
        let cat = Catalog::new();
        assert!(cat.plan_table("t", 0, 10, PAGE, IMAGE).is_err());
        assert!(cat.plan_table("t", 10, 10, PAGE, IMAGE).is_err());
    }

    #[test]
    fn out_of_space_rejected() {
        let cat = Catalog::new();
        assert!(cat.plan_table("t", 4096, 10_000, PAGE, IMAGE).is_err());
    }

    #[test]
    fn lookups() {
        let mut cat = Catalog::new();
        let m = plan_and_register(&mut cat, "accounts", 100, 10);
        assert_eq!(cat.by_name("accounts").unwrap().table, m.table);
        assert_eq!(cat.get(m.table).unwrap().name, "accounts");
        assert!(cat.by_name("nope").is_err());
        assert!(cat.get(TableId(99)).is_err());
    }

    #[test]
    fn register_is_idempotent_for_replay() {
        let mut cat = Catalog::new();
        let m = plan_and_register(&mut cat, "t", 8, 10);
        cat.register(m.clone()).unwrap(); // replay
        assert_eq!(cat.len(), 1);
        // Conflicting metadata is rejected.
        let mut m2 = m;
        m2.rec_size = 12;
        assert!(cat.register(m2).is_err());
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut cat = Catalog::new();
        plan_and_register(&mut cat, "x", 100, 1000);
        plan_and_register(&mut cat, "y", 16, 32);
        let mut buf = BytesMut::new();
        cat.encode(&mut buf);
        let mut slice = &buf[..];
        let back = Catalog::decode(&mut slice).unwrap();
        assert!(slice.is_empty());
        assert_eq!(back.len(), 2);
        assert_eq!(back.watermark(), cat.watermark());
        assert_eq!(back.by_name("y").unwrap(), cat.by_name("y").unwrap());
    }

    #[test]
    fn page_local_layout_parameters() {
        // 100-byte records on 4096-byte pages: header for 40 records is
        // ceil(40/32)*4 = 8 bytes; 8 + 40*100 = 4008 <= 4096.
        match HeapLayout::page_local(100, 4096).unwrap() {
            HeapLayout::PageLocal {
                records_per_page,
                header_bytes,
                page_size,
            } => {
                assert_eq!(records_per_page, 40);
                assert_eq!(header_bytes, 8);
                assert_eq!(page_size, 4096);
            }
            other => panic!("{other:?}"),
        }
        // A record as big as the page cannot fit next to a header.
        assert!(HeapLayout::page_local(4096, 4096).is_err());
    }

    #[test]
    fn page_local_records_never_cross_pages() {
        let mut cat = Catalog::new();
        let m = cat
            .plan_table_with_layout("t", 100, 1000, PAGE, IMAGE, true)
            .unwrap();
        cat.register(m.clone()).unwrap();
        assert_eq!(m.bitmap_base, m.data_base);
        for slot in 0..1000u32 {
            let a = m.slot_addr(SlotId(slot));
            let start_page = a.0 / PAGE;
            let end_page = (a.0 + m.rec_size - 1) / PAGE;
            assert_eq!(start_page, end_page, "slot {slot} crosses a page");
            // The record never overlaps its page's header.
            let (baddr, _) = m.bit_word_addr(SlotId(slot));
            assert_eq!(baddr.0 / PAGE, start_page, "header on same page");
            assert!(a.0 % PAGE >= 8, "record begins after the header");
        }
    }

    #[test]
    fn page_local_bit_word_is_on_the_record_page() {
        let cat = Catalog::new();
        let m = cat
            .plan_table_with_layout("t", 100, 200, PAGE, IMAGE, true)
            .unwrap();
        // Slots on the same page share header words; different pages don't.
        let (w0, b0) = m.bit_word_addr(SlotId(0));
        let (w1, b1) = m.bit_word_addr(SlotId(1));
        assert_eq!(w0, w1);
        assert_ne!(b0, b1);
        let (w40, _) = m.bit_word_addr(SlotId(40)); // next page (40 rpp)
        assert_eq!(w40.0, w0.0 + PAGE);
    }

    #[test]
    fn page_local_round_trips_through_catalog_encoding() {
        let mut cat = Catalog::new();
        let m = cat
            .plan_table_with_layout("t", 100, 500, PAGE, IMAGE, true)
            .unwrap();
        cat.register(m.clone()).unwrap();
        let mut buf = BytesMut::new();
        cat.encode(&mut buf);
        let mut slice = &buf[..];
        let back = Catalog::decode(&mut slice).unwrap();
        assert_eq!(back.get(m.table).unwrap(), &m);
    }
}
