//! Ping-pong checkpointing with audit certification (paper §2.1, §4.2).
//!
//! Two checkpoint images, `Ckpt_A` and `Ckpt_B`, alternate; the anchor
//! file `cur_ckpt` names the most recent *certified* image. A checkpoint:
//!
//! 1. quiesces physical updates (and log migration) and snapshots — at a
//!    single log position `CK_end` — the dirty pages, the ATT with local
//!    undo logs, and the catalog;
//! 2. writes the pages and metadata to the non-current image;
//! 3. audits **every region of the database** (§4.2: auditing only the
//!    written pages is insufficient because a transaction may have carried
//!    corruption from an unwritten page); and
//! 4. only if the audit is clean, toggles the anchor — the checkpoint is
//!    *certified free of corruption*.
//!
//! A failed audit leaves the previous certified checkpoint in place,
//! records the corrupt regions in a marker file, and poisons the engine so
//! the caller restarts into corruption recovery.
//!
//! Dali itself writes fuzzy checkpoints and patches them consistent with a
//! redo-log prefix; our quiescent snapshot obtains the same
//! update-consistent-at-`CK_end` property directly (noted in DESIGN.md).

use crate::catalog::Catalog;
use crate::db::{CkptState, Db, EngineStats};
use bytes::{Buf, BufMut, BytesMut};
use dali_codeword::AuditReport;
use dali_common::{CodewordAlgebraKind, DaliError, Lsn, PageId, Result};
use dali_wal::record::LogRecord;
use std::fs::OpenOptions;
use std::io::{Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;

// CB01 had no algebra tag; CB02 appends the codeword-algebra byte right
// after the magic so recovery can reject an image certified under a
// different algebra than the one configured. CB03 adds the parity-stripe
// layout (`parity_group_size`, `0` = stripe off) so recovery can reject
// an image whose parity geometry disagrees with the configured one.
const META_MAGIC: u32 = 0xDA11_CB03;
const ANCHOR_MAGIC: u32 = 0xDA11_A0C1;
const PARITY_MAGIC: u32 = 0xDA11_9A81;

/// Outcome of a checkpoint attempt.
#[derive(Debug)]
pub enum CheckpointOutcome {
    /// Checkpoint written, audited clean, anchor toggled.
    Certified {
        /// The log position the checkpoint is consistent with.
        ck_end: Lsn,
        /// Pages written to the image file.
        pages_written: usize,
    },
    /// The post-checkpoint audit found corruption; the anchor was *not*
    /// toggled, a corruption marker was written, and the engine is
    /// poisoned. Reopen the database to run corruption recovery.
    CorruptionDetected(AuditReport),
    /// The certification audit found corruption but the repair ladder
    /// healed it online (parity rebuild, or checkpoint+WAL cache
    /// recovery) and the damaged regions re-audited clean. The anchor was
    /// *not* toggled and the engine stays up; the repaired pages are
    /// re-noted dirty and the next certification sweeps everything, so a
    /// retried checkpoint covers the healed state.
    CorruptionRepaired {
        report: AuditReport,
        outcome: crate::repair::RepairOutcome,
    },
}

/// Checkpoint metadata (one per image file).
#[derive(Clone, Debug)]
pub struct CkptMeta {
    pub serial: u64,
    /// Redo scans start here; the image is update-consistent with this
    /// log position.
    pub ck_end: Lsn,
    pub next_txn: u64,
    pub next_audit: u64,
    /// `Audit_SN`: LSN of the begin record of the last clean audit at the
    /// time the checkpoint was taken.
    pub audit_sn: Option<Lsn>,
    /// The codeword algebra the certifying audit ran under. Recovery
    /// refuses an image whose algebra differs from the configured one.
    pub algebra: CodewordAlgebraKind,
    /// Parity-stripe layout at checkpoint time: regions per parity group,
    /// `0` when the stripe is off. Recovery refuses a layout mismatch
    /// (the persisted stripe and the repair ladder's assumptions would
    /// silently disagree) and rebuilds the stripe from the replayed image.
    pub parity_group_size: u64,
    pub catalog: Catalog,
    /// Serialized ATT (decoded lazily by recovery).
    pub att_blob: Vec<u8>,
}

impl CkptMeta {
    fn encode(&self) -> Vec<u8> {
        let mut buf = BytesMut::new();
        buf.put_u32_le(META_MAGIC);
        buf.put_u8(self.algebra.tag());
        buf.put_u64_le(self.parity_group_size);
        buf.put_u64_le(self.serial);
        buf.put_u64_le(self.ck_end.0);
        buf.put_u64_le(self.next_txn);
        buf.put_u64_le(self.next_audit);
        buf.put_u64_le(self.audit_sn.map_or(u64::MAX, |l| l.0));
        let mut cat = BytesMut::new();
        self.catalog.encode(&mut cat);
        buf.put_u32_le(cat.len() as u32);
        buf.extend_from_slice(&cat);
        buf.put_u32_le(self.att_blob.len() as u32);
        buf.extend_from_slice(&self.att_blob);
        let sum = dali_wal::record::checksum(&buf);
        buf.put_u32_le(sum);
        buf.to_vec()
    }

    fn decode(bytes: &[u8]) -> Result<CkptMeta> {
        if bytes.len() < 8 {
            return Err(DaliError::RecoveryFailed("ckpt meta truncated".into()));
        }
        let (body, sum_bytes) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(sum_bytes.try_into().unwrap());
        if dali_wal::record::checksum(body) != stored {
            return Err(DaliError::RecoveryFailed(
                "ckpt meta checksum mismatch".into(),
            ));
        }
        let mut buf = body;
        if buf.get_u32_le() != META_MAGIC {
            return Err(DaliError::RecoveryFailed("ckpt meta bad magic".into()));
        }
        let algebra = CodewordAlgebraKind::from_tag(buf.get_u8()).ok_or_else(|| {
            DaliError::RecoveryFailed("ckpt meta unknown codeword algebra tag".into())
        })?;
        let parity_group_size = buf.get_u64_le();
        let serial = buf.get_u64_le();
        let ck_end = Lsn(buf.get_u64_le());
        let next_txn = buf.get_u64_le();
        let next_audit = buf.get_u64_le();
        let audit_sn = match buf.get_u64_le() {
            u64::MAX => None,
            v => Some(Lsn(v)),
        };
        let cat_len = buf.get_u32_le() as usize;
        if buf.len() < cat_len {
            return Err(DaliError::RecoveryFailed("ckpt catalog truncated".into()));
        }
        let mut cat_slice = &buf[..cat_len];
        let catalog = Catalog::decode(&mut cat_slice)?;
        buf.advance(cat_len);
        let att_len = buf.get_u32_le() as usize;
        if buf.len() < att_len {
            return Err(DaliError::RecoveryFailed("ckpt ATT truncated".into()));
        }
        let att_blob = buf[..att_len].to_vec();
        Ok(CkptMeta {
            serial,
            ck_end,
            next_txn,
            next_audit,
            audit_sn,
            algebra,
            parity_group_size,
            catalog,
            att_blob,
        })
    }
}

/// Atomically (write-temp + rename + parent-dir fsync) persist `bytes`
/// at `path`.
///
/// The directory sync is not optional: `rename` only updates the
/// directory entry in memory, so a crash after the rename but before the
/// directory block reaches disk can resurface the *old* file — for the
/// anchor, a certified-checkpoint pointer silently rolling back. Either
/// post-crash state (old or new bytes) is individually sound; the sync
/// bounds *when* the new state becomes the only possible one. The
/// `atomic_write.post_rename` crash point sits exactly in that window so
/// fault-injection tests can exercise both outcomes.
pub(crate) fn atomic_write(path: &Path, bytes: &[u8]) -> Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&tmp)?;
        f.write_all(bytes)?;
        f.sync_data()?;
    }
    std::fs::rename(&tmp, path)?;
    dali_common::crashpoint::check("atomic_write.post_rename")?;
    sync_parent_dir(path)
}

/// Fsync the directory containing `path`, making a rename into it
/// durable.
pub(crate) fn sync_parent_dir(path: &Path) -> Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::File::open(parent)?.sync_all()?;
    }
    Ok(())
}

/// Write the checkpoint anchor.
pub fn write_anchor(dir: &Path, image: usize, serial: u64) -> Result<()> {
    let mut buf = BytesMut::new();
    buf.put_u32_le(ANCHOR_MAGIC);
    buf.put_u8(image as u8);
    buf.put_u64_le(serial);
    atomic_write(&Db::anchor_path(dir), &buf)
}

/// Read the checkpoint anchor: (image index, serial).
pub fn read_anchor(dir: &Path) -> Result<(usize, u64)> {
    let bytes = std::fs::read(Db::anchor_path(dir))?;
    if bytes.len() != 13 {
        return Err(DaliError::RecoveryFailed("anchor file malformed".into()));
    }
    let mut buf = &bytes[..];
    if buf.get_u32_le() != ANCHOR_MAGIC {
        return Err(DaliError::RecoveryFailed("anchor bad magic".into()));
    }
    let image = buf.get_u8() as usize;
    let serial = buf.get_u64_le();
    if image > 1 {
        return Err(DaliError::RecoveryFailed(format!("anchor image {image}")));
    }
    Ok((image, serial))
}

/// Persist checkpoint metadata for an image.
pub fn write_meta(dir: &Path, image: usize, meta: &CkptMeta) -> Result<()> {
    atomic_write(&Db::meta_path(dir, image), &meta.encode())
}

/// Load checkpoint metadata for an image.
pub fn read_meta(dir: &Path, image: usize) -> Result<CkptMeta> {
    let bytes = std::fs::read(Db::meta_path(dir, image))?;
    CkptMeta::decode(&bytes)
}

/// A parity stripe as persisted beside a checkpoint image: per group,
/// the maintained parity codeword and the parity buffer bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParityFile {
    pub group_size: u64,
    pub region_size: u64,
    /// `(maintained codeword, parity buffer)` per group, in group order.
    pub groups: Vec<(u32, Vec<u8>)>,
}

/// Persist the parity stripe beside checkpoint image `image` (or remove a
/// stale stripe file when parity is off). The snapshot is taken group by
/// group under each group's buffer mutex, concurrent with updaters: the
/// persisted stripe is *advisory* — recovery always rebuilds the live
/// stripe from the replayed image — but each persisted group is
/// internally consistent (buffer matches word), so offline verification
/// can fold-check it like any other codeworded data.
fn write_parity(dir: &Path, image: usize, db: &Arc<Db>) -> Result<()> {
    let path = Db::parity_path(dir, image);
    let Some(stripe) = db.prot.parity() else {
        match std::fs::remove_file(&path) {
            Ok(()) => return sync_parent_dir(&path),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(e.into()),
        }
    };
    let region_size = db.prot.geometry().region_size();
    let mut buf = BytesMut::new();
    buf.put_u32_le(PARITY_MAGIC);
    buf.put_u64_le(stripe.group_size() as u64);
    buf.put_u64_le(stripe.num_groups() as u64);
    buf.put_u64_le(region_size as u64);
    let mut group = vec![0u8; region_size];
    for g in 0..stripe.num_groups() {
        let word = stripe.export_group(g, &mut group);
        buf.put_u32_le(word);
        buf.extend_from_slice(&group);
    }
    let sum = dali_wal::record::checksum(&buf);
    buf.put_u32_le(sum);
    atomic_write(&path, &buf)
}

/// Load the parity stripe persisted beside checkpoint image `image`;
/// `Ok(None)` when no stripe file exists (parity off at checkpoint time).
pub fn read_parity(dir: &Path, image: usize) -> Result<Option<ParityFile>> {
    let bytes = match std::fs::read(Db::parity_path(dir, image)) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    if bytes.len() < 32 {
        return Err(DaliError::RecoveryFailed("parity file truncated".into()));
    }
    let (body, sum_bytes) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes(sum_bytes.try_into().unwrap());
    if dali_wal::record::checksum(body) != stored {
        return Err(DaliError::RecoveryFailed(
            "parity file checksum mismatch".into(),
        ));
    }
    let mut buf = body;
    if buf.get_u32_le() != PARITY_MAGIC {
        return Err(DaliError::RecoveryFailed("parity file bad magic".into()));
    }
    let group_size = buf.get_u64_le();
    let num_groups = buf.get_u64_le() as usize;
    let region_size = buf.get_u64_le();
    if buf.len() != num_groups * (4 + region_size as usize) {
        return Err(DaliError::RecoveryFailed(
            "parity file length disagrees with its header".into(),
        ));
    }
    let mut groups = Vec::with_capacity(num_groups);
    for _ in 0..num_groups {
        let word = buf.get_u32_le();
        let mut g = vec![0u8; region_size as usize];
        buf.copy_to_slice(&mut g);
        groups.push((word, g));
    }
    Ok(Some(ParityFile {
        group_size,
        region_size,
        groups,
    }))
}

/// Write `pages` of the in-memory snapshot into an image file (positioned
/// writes at `page * page_size`).
fn write_pages(
    dir: &Path,
    image: usize,
    page_size: usize,
    db_bytes: usize,
    pages: &[(PageId, Vec<u8>)],
) -> Result<()> {
    let mut f = OpenOptions::new()
        .create(true)
        .truncate(false) // partial page set: keep the untouched pages
        .write(true)
        .open(Db::img_path(dir, image))?;
    f.set_len(db_bytes as u64)?;
    for (page, data) in pages {
        debug_assert_eq!(data.len(), page_size);
        f.seek(SeekFrom::Start(page.0 as u64 * page_size as u64))?;
        f.write_all(data)?;
    }
    f.sync_data()?;
    Ok(())
}

/// Run a full-database audit. Every scheme — deferred maintenance
/// included — sweeps region by region under the protection latches,
/// concurrently with updaters: deferred updaters hold their region
/// latch shared across the write+enqueue bracket, so the audit drains
/// each region's dirty-set shard under that region's exclusive latch
/// before folding (a queued-but-unapplied delta would otherwise read as
/// a spurious mismatch). No global quiesce anywhere. The sweep is striped
/// across [`DaliConfig::audit_threads`](dali_common::DaliConfig) workers
/// (each region still individually latched, so the concurrency argument
/// is unchanged), and the sweep's region count, bytes folded, and
/// wall-clock time are recorded in [`EngineStats`].
fn sweep_audit(db: &Arc<Db>) -> Result<dali_codeword::AuditReport> {
    let start = std::time::Instant::now();
    let report = db.prot.audit(&db.image)?;
    record_sweep_stats(db, &report, start.elapsed().as_nanos() as u64);
    Ok(report)
}

/// Run a delta-certification sweep over exactly `regions` (sorted,
/// deduplicated), with the same latching, deferred catch-up, and stats
/// recording as the full sweep. See [`checkpoint`] for how the region
/// list is derived and why the restriction is sound.
fn sweep_audit_regions(
    db: &Arc<Db>,
    regions: &[dali_codeword::RegionId],
) -> Result<dali_codeword::AuditReport> {
    let start = std::time::Instant::now();
    let report = db.prot.audit_regions(&db.image, regions)?;
    record_sweep_stats(db, &report, start.elapsed().as_nanos() as u64);
    Ok(report)
}

fn record_sweep_stats(db: &Arc<Db>, report: &dali_codeword::AuditReport, elapsed_ns: u64) {
    use std::sync::atomic::Ordering::Relaxed;
    let region_size = db.prot.geometry().region_size() as u64;
    let stats = &db.stats;
    stats
        .regions_audited
        .fetch_add(report.regions_checked as u64, Relaxed);
    stats
        .bytes_folded
        .fetch_add(report.regions_checked as u64 * region_size, Relaxed);
    stats
        .audit_latch_brackets
        .fetch_add(report.latch_brackets as u64, Relaxed);
    stats.audit_ns.fetch_add(elapsed_ns, Relaxed);
}

/// Take a checkpoint (paper §2.1 + §4.2 certification). See module docs.
pub fn checkpoint(db: &Arc<Db>) -> Result<CheckpointOutcome> {
    db.check_alive()?;
    let dir = db.config.dir.clone();
    let mut state = db.ckpt_state.lock();
    let image = state.next_image;

    // ---- quiescent snapshot ----
    let (ck_end, att_blob, catalog, dirty_pages) = {
        let _q = db.quiesce.write();
        db.syslog.flush(false)?;
        let ck_end = db.syslog.current_lsn();
        let att_blob = db.att.encode_for_ckpt()?;
        let catalog = db.catalog.read().clone();
        let dirty = db.syslog.dirty().take(image);
        let mut pages = Vec::with_capacity(dirty.len());
        for p in dirty {
            let mut buf = vec![0u8; db.config.page_size];
            db.image.read_page(p, &mut buf)?;
            pages.push((p, buf));
        }
        (ck_end, att_blob, catalog, pages)
    };

    // ---- write the image ----
    let pages_written = dirty_pages.len();
    write_pages(
        &dir,
        image,
        db.config.page_size,
        db.config.db_bytes(),
        &dirty_pages,
    )?;

    // ---- certify: audit the database (full sweep or dirty delta) ----
    //
    // The paper's §4.2 certification audits every region. With the
    // `full_certify_every` cadence, intermediate checkpoints instead
    // delta-certify: they audit only the regions overlapped by the dirty
    // pages just drained (a safe superset of everything written through
    // the interface since this image's previous checkpoint — pages are
    // noted to both images) plus any regions with queued deferred
    // deltas. Corruption *inside* that footprint is caught exactly as a
    // full sweep would catch it; a wild write to an untouched region is
    // invisible to the maintained codewords' drift (nothing legitimate
    // changed them) and is caught by the next full sweep — at most
    // `full_certify_every - 1` checkpoints later. Because of that bound,
    // `Audit_SN` (`last_clean_audit`, the corruption-recovery horizon)
    // only advances on full sweeps, and the cadence is overridden to
    // full after recovery or any failed certification (`force_full`).
    if db.config.audit_on_checkpoint && db.config.scheme.maintains_codewords() {
        let every = db.config.full_certify_every;
        let full =
            every == 0 || state.force_full || state.ckpts_since_full >= every.saturating_sub(1);
        let audit_id = db.next_audit_id();
        let begin_lsn = {
            let _q = db.quiesce.read();
            db.syslog.append(&LogRecord::AuditBegin { audit_id })
        };
        let report = if full {
            sweep_audit(db)?
        } else {
            let pages: Vec<PageId> = dirty_pages.iter().map(|(p, _)| *p).collect();
            let mut regions = dali_wal::pages_to_regions(
                &pages,
                db.config.page_size,
                db.prot.geometry().region_size(),
            );
            regions.extend(db.prot.deferred_dirty_regions());
            regions.sort_unstable();
            regions.dedup();
            let skipped = db.prot.geometry().num_regions() - regions.len();
            db.stats
                .certify_regions_skipped
                .fetch_add(skipped as u64, std::sync::atomic::Ordering::Relaxed);
            sweep_audit_regions(db, &regions)?
        };
        db.stats.certify_regions_certified.fetch_add(
            report.regions_checked as u64,
            std::sync::atomic::Ordering::Relaxed,
        );
        let clean = report.clean();
        {
            let _q = db.quiesce.read();
            db.syslog.append(&LogRecord::AuditEnd { audit_id, clean });
        }
        db.syslog.flush(false)?;
        EngineStats::bump(&db.stats.audits);
        EngineStats::bump(if full {
            &db.stats.certify_full
        } else {
            &db.stats.certify_delta
        });
        if !clean {
            // Keep the previous certified checkpoint; the pages we drained
            // must be re-noted so a future checkpoint rewrites them, and
            // the next certification must sweep everything — the failed
            // one proves the footprint no longer bounds the damage.
            state.force_full = true;
            db.syslog
                .dirty()
                .note_all(dirty_pages.iter().map(|(p, _)| *p));
            // Try to heal online before bringing the database down: the
            // ckpt_state lock is held across the repair, so no competing
            // checkpoint interleaves with the rebuild.
            if let Some(outcome) = crate::repair::auto_repair(db, &report)? {
                return Ok(CheckpointOutcome::CorruptionRepaired { report, outcome });
            }
            crate::corruption::report_corruption(db, &report.corrupt_ranges())?;
            return Ok(CheckpointOutcome::CorruptionDetected(report));
        }
        // Certify the parity stripe's dirty footprint: parity buffers are
        // not backed by image pages, so the dirty-page → region mapping
        // above cannot see them; the stripe's own dirty-group flags are
        // their certification channel. A group failing verification means
        // the stripe memory itself took a wild write — its members just
        // audited clean, so rebuild the group from the image under its
        // latch bracket rather than distrusting the data.
        if let Some(stripe) = db.prot.parity() {
            stripe.drain_all();
            let dirty_groups = stripe.take_dirty_groups();
            db.stats.certify_parity_groups.fetch_add(
                dirty_groups.len() as u64,
                std::sync::atomic::Ordering::Relaxed,
            );
            for g in dirty_groups {
                if !stripe.verify_group(g) {
                    db.prot.resync_parity_group(&db.image, g)?;
                }
            }
        }
        if full {
            state.ckpts_since_full = 0;
            state.force_full = false;
            *db.last_clean_audit.lock() = Some(begin_lsn);
        } else {
            state.ckpts_since_full += 1;
        }
    }

    // ---- publish ----
    state.serial += 1;
    let meta = CkptMeta {
        serial: state.serial,
        ck_end,
        next_txn: db.txn_counter.load(std::sync::atomic::Ordering::Relaxed),
        next_audit: db.audit_counter.load(std::sync::atomic::Ordering::Relaxed),
        audit_sn: *db.last_clean_audit.lock(),
        algebra: db.prot.kind(),
        parity_group_size: db.config.resolved_parity_group_size() as u64,
        catalog,
        att_blob,
    };
    write_parity(&dir, image, db)?;
    write_meta(&dir, image, &meta)?;
    write_anchor(&dir, image, state.serial)?;
    state.next_image = 1 - image;
    {
        let _q = db.quiesce.read();
        db.syslog
            .append(&LogRecord::CkptComplete { ckpt_lsn: ck_end });
    }
    db.syslog.flush(false)?;

    // ---- bitcask-style retention: retire fully-covered segments ----
    // A sealed segment may go only when BOTH ping-pong images could
    // replay without it — `restore_prior_state` can fall back to the
    // older image — so the horizon is the minimum of the two metas'
    // `CK_end`. Before the second-ever checkpoint the other meta does
    // not exist yet and nothing is retired.
    if db.config.log_retire {
        if let Ok(other) = read_meta(&dir, 1 - image) {
            let horizon = Lsn(ck_end.0.min(other.ck_end.0));
            db.syslog.retire_covered(horizon)?;
        }
    }
    db.refresh_log_gauges()?;

    EngineStats::bump(&db.stats.checkpoints);
    Ok(CheckpointOutcome::Certified {
        ck_end,
        pages_written,
    })
}

/// Standalone audit of the whole database, logged with AuditBegin/End
/// (paper §3.2's asynchronous audit). On failure, writes the corruption
/// marker and poisons the engine.
pub fn audit(db: &Arc<Db>) -> Result<AuditReport> {
    db.check_alive()?;
    let audit_id = db.next_audit_id();
    let begin_lsn = {
        let _q = db.quiesce.read();
        db.syslog.append(&LogRecord::AuditBegin { audit_id })
    };
    let report = sweep_audit(db)?;
    let clean = report.clean();
    {
        let _q = db.quiesce.read();
        db.syslog.append(&LogRecord::AuditEnd { audit_id, clean });
    }
    db.syslog.flush(false)?;
    EngineStats::bump(&db.stats.audits);
    if clean {
        *db.last_clean_audit.lock() = Some(begin_lsn);
    } else {
        // Self-healing hook: walk the repair ladder before bringing the
        // database down. Only a clean re-audit of the damaged regions
        // counts as healed; otherwise the legacy detect-and-crash path
        // runs unchanged.
        db.ckpt_state.lock().force_full = true;
        if crate::repair::auto_repair(db, &report)?.is_none() {
            crate::corruption::report_corruption(db, &report.corrupt_ranges())?;
        }
    }
    Ok(report)
}

/// Load checkpoint pages of `image` into a fresh byte vector of the full
/// database size (recovery).
pub fn load_image_bytes(dir: &Path, image: usize, db_bytes: usize) -> Result<Vec<u8>> {
    let bytes = std::fs::read(Db::img_path(dir, image))?;
    if bytes.len() != db_bytes {
        return Err(DaliError::RecoveryFailed(format!(
            "checkpoint image is {} bytes, expected {}",
            bytes.len(),
            db_bytes
        )));
    }
    Ok(bytes)
}

/// Initialize checkpoint bookkeeping for a fresh database.
pub fn initial_state() -> CkptState {
    CkptState {
        next_image: 0,
        serial: 0,
        ckpts_since_full: 0,
        // A fresh database has never been fully certified: the first
        // checkpoint sweeps everything before any delta cadence starts.
        force_full: true,
    }
}

/// Scrub the *anchored* checkpoint image file against the live codeword
/// table: load the certified image from disk, fold each protection region
/// with the table's algebra, and report every region whose on-disk fold
/// disagrees with the maintained codeword.
///
/// The checkpoint holds the quiesce lock only across its snapshot, so no
/// whole-image codeword is persisted with the image; this scrub is the
/// offline complement — it detects bit rot (or fault injection) that hit
/// the image *file* after certification. The caller must ensure no
/// updates run during the scrub (the codewords must describe the bytes
/// the image was written from); tests and offline verification tools
/// satisfy this trivially.
pub fn scrub_anchored_image(db: &Arc<Db>) -> Result<AuditReport> {
    let dir = db.config.dir.clone();
    let (image_idx, _serial) = read_anchor(&dir)?;
    let bytes = load_image_bytes(&dir, image_idx, db.config.db_bytes())?;
    let geom = db.prot.geometry();
    let kind = db.prot.kind();
    let mut report = AuditReport::default();
    for r in 0..geom.num_regions() {
        let base = geom.region_base(r);
        let len = geom.region_size();
        let actual = dali_codeword::algebra::fold(kind, &bytes[base.0..base.0 + len]);
        let expected = db.prot.table().get(r);
        if actual != expected {
            report.corrupt.push(dali_codeword::CorruptRegion {
                region: r,
                addr: base,
                len,
                expected,
                actual,
            });
        }
        report.regions_checked += 1;
    }
    Ok(report)
}

/// Read selected pages straight from a checkpoint image file (cache
/// recovery repairs regions from the certified checkpoint).
pub fn read_ckpt_pages(
    dir: &Path,
    image: usize,
    page_size: usize,
    pages: &[PageId],
) -> Result<Vec<(PageId, Vec<u8>)>> {
    use std::io::Read;
    let mut f = std::fs::File::open(Db::img_path(dir, image))?;
    let mut out = Vec::with_capacity(pages.len());
    for &p in pages {
        let mut buf = vec![0u8; page_size];
        f.seek(SeekFrom::Start(p.0 as u64 * page_size as u64))?;
        f.read_exact(&mut buf)?;
        out.push((p, buf));
    }
    Ok(out)
}

#[allow(unused_imports)]
use crate::att as _att_doc; // keep rustdoc link target in scope

#[cfg(test)]
mod tests {
    use super::*;
    use crate::att::Att;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("dali-ckpt-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn anchor_round_trip() {
        let d = tmpdir("anchor");
        write_anchor(&d, 1, 42).unwrap();
        assert_eq!(read_anchor(&d).unwrap(), (1, 42));
        write_anchor(&d, 0, 43).unwrap();
        assert_eq!(read_anchor(&d).unwrap(), (0, 43));
    }

    #[test]
    fn meta_round_trip() {
        let d = tmpdir("meta");
        let mut catalog = Catalog::new();
        let m = catalog.plan_table("t", 8, 100, 4096, 1 << 20).unwrap();
        catalog.register(m).unwrap();
        let att = Att::new();
        att.insert(dali_common::TxnId(7));
        let meta = CkptMeta {
            serial: 3,
            ck_end: Lsn(1000),
            next_txn: 8,
            next_audit: 2,
            audit_sn: Some(Lsn(900)),
            algebra: CodewordAlgebraKind::XorFold,
            parity_group_size: 8,
            catalog,
            att_blob: att.encode_for_ckpt().unwrap(),
        };
        write_meta(&d, 0, &meta).unwrap();
        let back = read_meta(&d, 0).unwrap();
        assert_eq!(back.serial, 3);
        assert_eq!(back.ck_end, Lsn(1000));
        assert_eq!(back.audit_sn, Some(Lsn(900)));
        assert_eq!(back.catalog.len(), 1);
        let states = Att::decode_for_recovery(&back.att_blob).unwrap();
        assert_eq!(states.len(), 1);
    }

    #[test]
    fn meta_none_audit_sn() {
        let d = tmpdir("meta2");
        let meta = CkptMeta {
            serial: 1,
            ck_end: Lsn(0),
            next_txn: 0,
            next_audit: 0,
            audit_sn: None,
            algebra: CodewordAlgebraKind::Residue,
            parity_group_size: 0,
            catalog: Catalog::new(),
            att_blob: Att::new().encode_for_ckpt().unwrap(),
        };
        write_meta(&d, 1, &meta).unwrap();
        assert_eq!(read_meta(&d, 1).unwrap().audit_sn, None);
    }

    #[test]
    fn meta_corruption_detected() {
        let d = tmpdir("meta3");
        let meta = CkptMeta {
            serial: 1,
            ck_end: Lsn(0),
            next_txn: 0,
            next_audit: 0,
            audit_sn: None,
            algebra: CodewordAlgebraKind::XorFold,
            parity_group_size: 0,
            catalog: Catalog::new(),
            att_blob: vec![0, 0, 0, 0],
        };
        write_meta(&d, 0, &meta).unwrap();
        let p = Db::meta_path(&d, 0);
        let mut bytes = std::fs::read(&p).unwrap();
        bytes[6] ^= 0xff;
        std::fs::write(&p, &bytes).unwrap();
        assert!(read_meta(&d, 0).is_err());
    }

    #[test]
    fn pages_round_trip() {
        let d = tmpdir("pages");
        let ps = 4096;
        let pages = vec![(PageId(0), vec![1u8; ps]), (PageId(3), vec![3u8; ps])];
        write_pages(&d, 0, ps, ps * 8, &pages).unwrap();
        let bytes = load_image_bytes(&d, 0, ps * 8).unwrap();
        assert!(bytes[..ps].iter().all(|&b| b == 1));
        assert!(bytes[ps..2 * ps].iter().all(|&b| b == 0));
        assert!(bytes[3 * ps..4 * ps].iter().all(|&b| b == 3));

        let read = read_ckpt_pages(&d, 0, ps, &[PageId(3), PageId(1)]).unwrap();
        assert_eq!(read[0].1, vec![3u8; ps]);
        assert_eq!(read[1].1, vec![0u8; ps]);
    }

    #[test]
    fn write_pages_updates_in_place() {
        let d = tmpdir("inplace");
        let ps = 4096;
        write_pages(&d, 0, ps, ps * 4, &[(PageId(1), vec![7u8; ps])]).unwrap();
        write_pages(&d, 0, ps, ps * 4, &[(PageId(2), vec![9u8; ps])]).unwrap();
        let bytes = load_image_bytes(&d, 0, ps * 4).unwrap();
        assert!(
            bytes[ps..2 * ps].iter().all(|&b| b == 7),
            "page 1 preserved"
        );
        assert!(bytes[2 * ps..3 * ps].iter().all(|&b| b == 9));
    }
}
