//! The Active Transaction Table (paper §2.1).
//!
//! Each entry carries the transaction's local undo and redo logs (Dali's
//! local logging). The checkpointer serializes the ATT — including local
//! undo logs — into checkpoint metadata so that restart recovery has
//! physical undo for operations that were in flight at checkpoint time.

use bytes::{Buf, BufMut, BytesMut};
use dali_codeword::LatchMode;
use dali_common::{DaliError, DbAddr, OpSeq, RecId, Result, TxnId};
use dali_wal::record::OpKind;
use dali_wal::{LocalRedoLog, LocalUndoLog};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Transaction lifecycle state.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TxnStatus {
    Active,
    Committed,
    Aborted,
}

/// A physical update in its beginUpdate/endUpdate window.
#[derive(Clone, Debug)]
pub struct InFlightUpdate {
    /// Word-widened address of the undo image.
    pub waddr: DbAddr,
    /// Word-widened length.
    pub wlen: usize,
    /// Exact updated range (what the redo record will cover).
    pub exact_addr: DbAddr,
    pub exact_len: usize,
    /// Protection-latch span held for the window.
    pub latch_first: usize,
    pub latch_last: usize,
    pub latch_mode: LatchMode,
}

/// A level-1 operation in progress.
#[derive(Clone, Debug)]
pub struct OpState {
    pub seq: OpSeq,
    pub kind: OpKind,
    pub rec: RecId,
}

/// Per-transaction state (one ATT entry).
pub struct TxnState {
    pub id: TxnId,
    pub status: TxnStatus,
    pub undo: LocalUndoLog,
    pub redo: LocalRedoLog,
    pub next_op: u32,
    pub cur_op: Option<OpState>,
    pub cur_update: Option<InFlightUpdate>,
    /// Ranges exposed (mprotect-unprotected) by the current operation's
    /// physical updates; reprotected together when the operation ends, so
    /// control information sharing a page with data costs no extra
    /// syscall (the page-based behaviour of §5.3).
    pub op_exposures: Vec<(DbAddr, usize)>,
    /// Slots freed by this transaction's deletes (and insert rollbacks),
    /// released to the allocator mirror only at end of transaction.
    pub deferred_frees: Vec<RecId>,
}

impl TxnState {
    /// Fresh state for a transaction discovered during recovery.
    pub fn new_for_recovery(id: TxnId) -> TxnState {
        TxnState::new(id)
    }

    fn new(id: TxnId) -> TxnState {
        TxnState {
            id,
            status: TxnStatus::Active,
            undo: LocalUndoLog::new(),
            redo: LocalRedoLog::new(),
            next_op: 0,
            cur_op: None,
            cur_update: None,
            op_exposures: Vec::new(),
            deferred_frees: Vec::new(),
        }
    }

    /// Allocate the next operation sequence number.
    pub fn next_op_seq(&mut self) -> OpSeq {
        let s = OpSeq(self.next_op);
        self.next_op += 1;
        s
    }
}

/// The active transaction table.
#[derive(Default)]
pub struct Att {
    map: Mutex<HashMap<TxnId, Arc<Mutex<TxnState>>>>,
}

impl Att {
    /// Empty table.
    pub fn new() -> Att {
        Att::default()
    }

    /// Register a new transaction.
    pub fn insert(&self, id: TxnId) -> Arc<Mutex<TxnState>> {
        let state = Arc::new(Mutex::new(TxnState::new(id)));
        self.map.lock().insert(id, Arc::clone(&state));
        state
    }

    /// Register a transaction with pre-existing state (recovery).
    pub fn insert_state(&self, state: TxnState) -> Arc<Mutex<TxnState>> {
        let id = state.id;
        let state = Arc::new(Mutex::new(state));
        self.map.lock().insert(id, Arc::clone(&state));
        state
    }

    /// Remove a finished transaction.
    pub fn remove(&self, id: TxnId) {
        self.map.lock().remove(&id);
    }

    /// Look up a transaction.
    pub fn get(&self, id: TxnId) -> Option<Arc<Mutex<TxnState>>> {
        self.map.lock().get(&id).cloned()
    }

    /// Ids of all registered transactions.
    pub fn ids(&self) -> Vec<TxnId> {
        self.map.lock().keys().copied().collect()
    }

    /// Number of registered transactions.
    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    /// True if no transactions are registered.
    pub fn is_empty(&self) -> bool {
        self.map.lock().is_empty()
    }

    /// Serialize the ATT for a checkpoint: each active transaction's id
    /// and local undo log. Must be called while physical updates are
    /// quiesced (no entry may have an update in flight).
    pub fn encode_for_ckpt(&self) -> Result<Vec<u8>> {
        let map = self.map.lock();
        let mut buf = BytesMut::new();
        let mut entries: Vec<_> = map.values().collect();
        entries.sort_by_key(|s| s.lock().id);
        buf.put_u32_le(entries.len() as u32);
        for entry in entries {
            let st = entry.lock();
            if st.cur_update.is_some() {
                return Err(DaliError::InvalidArg(
                    "checkpointing ATT with a physical update in flight".into(),
                ));
            }
            buf.put_u64_le(st.id.0);
            buf.put_u32_le(st.next_op);
            st.undo.encode(&mut buf);
        }
        Ok(buf.to_vec())
    }

    /// Decode a checkpointed ATT into recovery-time transaction states.
    pub fn decode_for_recovery(mut bytes: &[u8]) -> Result<Vec<TxnState>> {
        if bytes.len() < 4 {
            return Err(DaliError::RecoveryFailed("ATT blob truncated".into()));
        }
        let n = bytes.get_u32_le() as usize;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            if bytes.len() < 12 {
                return Err(DaliError::RecoveryFailed("ATT entry truncated".into()));
            }
            let id = TxnId(bytes.get_u64_le());
            let next_op = bytes.get_u32_le();
            let undo = LocalUndoLog::decode(&mut bytes)?;
            let mut st = TxnState::new(id);
            st.next_op = next_op;
            st.undo = undo;
            out.push(st);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dali_common::{SlotId, TableId};
    use dali_wal::record::LogicalUndo;

    #[test]
    fn insert_get_remove() {
        let att = Att::new();
        att.insert(TxnId(1));
        att.insert(TxnId(2));
        assert_eq!(att.len(), 2);
        assert!(att.get(TxnId(1)).is_some());
        att.remove(TxnId(1));
        assert!(att.get(TxnId(1)).is_none());
        assert_eq!(att.len(), 1);
    }

    #[test]
    fn op_seq_monotonic() {
        let att = Att::new();
        let st = att.insert(TxnId(1));
        let mut g = st.lock();
        assert_eq!(g.next_op_seq(), OpSeq(0));
        assert_eq!(g.next_op_seq(), OpSeq(1));
    }

    #[test]
    fn ckpt_round_trip() {
        let att = Att::new();
        {
            let st = att.insert(TxnId(7));
            let mut g = st.lock();
            g.next_op = 3;
            g.undo
                .push_physical(OpSeq(2), DbAddr(100), vec![1, 2, 3, 4]);
            g.undo.seal_top_physical(OpSeq(2)).unwrap();
            g.undo.commit_op(
                OpSeq(2),
                LogicalUndo::HeapInsert {
                    rec: RecId::new(TableId(0), SlotId(9)),
                },
            );
        }
        att.insert(TxnId(8));
        let blob = att.encode_for_ckpt().unwrap();
        let states = Att::decode_for_recovery(&blob).unwrap();
        assert_eq!(states.len(), 2);
        let t7 = states.iter().find(|s| s.id == TxnId(7)).unwrap();
        assert_eq!(t7.next_op, 3);
        assert_eq!(t7.undo.len(), 1);
        let t8 = states.iter().find(|s| s.id == TxnId(8)).unwrap();
        assert!(t8.undo.is_empty());
    }

    #[test]
    fn ckpt_rejects_in_flight_update() {
        let att = Att::new();
        let st = att.insert(TxnId(1));
        st.lock().cur_update = Some(InFlightUpdate {
            waddr: DbAddr(0),
            wlen: 4,
            exact_addr: DbAddr(0),
            exact_len: 4,
            latch_first: 0,
            latch_last: 0,
            latch_mode: LatchMode::None,
        });
        assert!(att.encode_for_ckpt().is_err());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Att::decode_for_recovery(&[1, 2]).is_err());
        // Claims one entry but has no body.
        assert!(Att::decode_for_recovery(&[1, 0, 0, 0]).is_err());
    }
}
