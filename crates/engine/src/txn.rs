//! Transactions: the prescribed update interface and multi-level
//! operations.
//!
//! Every write to the database image goes through
//! [`physical_update`](TxnHandle) — the beginUpdate/endUpdate bracket of
//! the paper (§2): capture a word-widened undo image, write in place,
//! publish the codeword delta, emit a physical redo record. Heap
//! operations (insert/update/delete) are level-1 operations: they begin
//! with an `OpBegin` record, perform physical updates, and commit by
//! migrating their redo records plus an `OpCommit` record (carrying the
//! logical undo description) to the system log — Dali's local logging
//! discipline.
//!
//! Reads dispatch per scheme: plain copy, precheck (§3.1), or read
//! logging (§4.2, with codewords per the §4.3 extension).
//!
//! Lock ordering throughout the engine: `quiesce` (shared) → transaction
//! state mutex → heap alloc mutex → protection latches (ascending
//! stripes) → deferred dirty-set shard mutex. The checkpointer takes
//! `quiesce` exclusively and then transaction state mutexes, which is
//! consistent with this order; the dirty-set shard mutex is only ever
//! taken after latches (updaters enqueue inside their bracket, auditors
//! drain under the exclusive stripe latch) and never while acquiring
//! one.

use crate::att::{InFlightUpdate, OpState, TxnState, TxnStatus};
use crate::db::{Db, EngineStats};
use crate::lock::LockMode;
use dali_common::{DaliError, DbAddr, RecId, Result, TableId, TxnId};
use dali_wal::record::{LogRecord, LogicalUndo, OpKind};
use dali_wal::{UndoEntry, UndoKind};
use parking_lot::Mutex;
use std::sync::Arc;

/// Handle to an active transaction.
///
/// Dropping an unfinished handle aborts the transaction (best effort).
pub struct TxnHandle {
    db: Arc<Db>,
    id: TxnId,
    state: Arc<Mutex<TxnState>>,
}

impl TxnHandle {
    /// Begin a new transaction on `db`.
    pub(crate) fn begin(db: Arc<Db>) -> Result<TxnHandle> {
        db.check_alive()?;
        let id = db.next_txn_id();
        let state = db.att.insert(id);
        state.lock().redo.push(LogRecord::TxnBegin { txn: id });
        Ok(TxnHandle { db, id, state })
    }

    /// This transaction's id.
    pub fn id(&self) -> TxnId {
        self.id
    }

    // ---------------------------------------------------------------
    // Reads
    // ---------------------------------------------------------------

    /// Read a record into `buf` (must be exactly the table's record size).
    ///
    /// Takes a shared record lock (strict 2PL). The read path depends on
    /// the protection scheme; under Read Prechecking a codeword mismatch
    /// surfaces as [`DaliError::CorruptionDetected`] *and* poisons the
    /// database so that the caller reopens it (cache recovery).
    pub fn read(&self, rec: RecId, buf: &mut [u8]) -> Result<()> {
        self.db.check_alive()?;
        let heap = self.db.heap(rec.table)?;
        if buf.len() != heap.meta().rec_size {
            return Err(DaliError::InvalidArg(format!(
                "read buffer is {} bytes, record size is {}",
                buf.len(),
                heap.meta().rec_size
            )));
        }
        self.db.locks.lock(self.id, rec, LockMode::Shared)?;
        if !heap.is_allocated_in_image(&self.db.image, rec.slot)? {
            return Err(DaliError::NotFound(format!("record {rec}")));
        }
        let addr = heap.meta().slot_addr(rec.slot);
        let scheme = self.db.config.scheme;
        if scheme.prechecks_reads() {
            match self.db.prot.checked_read(&self.db.image, addr, buf) {
                Ok(()) => {}
                Err(DaliError::CorruptionDetected {
                    addr: caddr,
                    len,
                    expected,
                    actual,
                }) => {
                    // Prevention: the corrupt value never reaches the
                    // caller. Note the region and force a restart (cache
                    // recovery), paper §4.2.
                    crate::corruption::report_corruption(&self.db, &[(caddr, len)])?;
                    return Err(DaliError::CorruptionDetected {
                        addr: caddr,
                        len,
                        expected,
                        actual,
                    });
                }
                Err(e) => return Err(e),
            }
        } else if scheme.logs_read_codewords() {
            let cws = self
                .db
                .prot
                .read_with_codewords(&self.db.image, addr, buf)?;
            let mut st = self.state.lock();
            st.redo.push(LogRecord::ReadLog {
                txn: self.id,
                addr,
                len: buf.len() as u32,
                codewords: cws,
            });
            EngineStats::bump(&self.db.stats.read_log_records);
        } else if scheme.logs_reads() {
            self.db.image.read(addr, buf)?;
            let mut st = self.state.lock();
            st.redo.push(LogRecord::ReadLog {
                txn: self.id,
                addr,
                len: buf.len() as u32,
                codewords: Vec::new(),
            });
            EngineStats::bump(&self.db.stats.read_log_records);
        } else {
            self.db.image.read(addr, buf)?;
        }
        EngineStats::bump(&self.db.stats.reads);
        Ok(())
    }

    /// Read a record into a fresh vector.
    pub fn read_vec(&self, rec: RecId) -> Result<Vec<u8>> {
        let heap = self.db.heap(rec.table)?;
        let mut buf = vec![0u8; heap.meta().rec_size];
        self.read(rec, &mut buf)?;
        Ok(buf)
    }

    // ---------------------------------------------------------------
    // Heap operations (level-1)
    // ---------------------------------------------------------------

    /// Insert a record; returns its id.
    pub fn insert(&self, table: TableId, data: &[u8]) -> Result<RecId> {
        self.db.check_alive()?;
        let heap = self.db.heap(table)?;
        if data.len() != heap.meta().rec_size {
            return Err(DaliError::InvalidArg(format!(
                "insert data is {} bytes, record size is {}",
                data.len(),
                heap.meta().rec_size
            )));
        }
        let slot = heap.reserve()?;
        let rec = RecId::new(table, slot);
        if let Err(e) = self.db.locks.lock(self.id, rec, LockMode::Exclusive) {
            heap.release(slot);
            return Err(e);
        }
        let _q = self.db.quiesce.read();
        let mut st = self.state.lock();
        let op = begin_op(&mut st, self.id, OpKind::Insert, rec);

        // Physical update 1: set the allocation bit (control information
        // on its own pages — serialized per heap so concurrent word RMWs
        // don't race).
        let (word_addr, bit) = heap.meta().bit_word_addr(slot);
        heap.with_alloc_locked(|| -> Result<()> {
            let word = read_bitmap_word(&self.db, word_addr)?;
            physical_update(
                &self.db,
                &mut st,
                self.id,
                op,
                word_addr,
                &(word | (1 << bit)).to_le_bytes(),
            )
        })?;

        // Physical update 2: the record data.
        let addr = heap.meta().slot_addr(slot);
        physical_update(&self.db, &mut st, self.id, op, addr, data)?;

        commit_op(
            &self.db,
            &mut st,
            self.id,
            op,
            LogicalUndo::HeapInsert { rec },
        )?;
        EngineStats::bump(&self.db.stats.inserts);
        Ok(rec)
    }

    /// Take the exclusive record lock without reading or writing —
    /// update intent, the read-for-update idiom.
    ///
    /// A read-modify-write that starts with [`read`](Self::read) takes a
    /// shared lock and must upgrade inside [`update`](Self::update);
    /// two transactions interleaving that on the same record deadlock
    /// every time (both hold shared, neither upgrade can be granted).
    /// Locking exclusively up front makes the sequence deadlock-free
    /// with respect to that record.
    pub fn lock_exclusive(&self, rec: RecId) -> Result<()> {
        self.db.check_alive()?;
        self.db.locks.lock(self.id, rec, LockMode::Exclusive)
    }

    /// Update a record in place.
    pub fn update(&self, rec: RecId, data: &[u8]) -> Result<()> {
        self.db.check_alive()?;
        let heap = self.db.heap(rec.table)?;
        if data.len() != heap.meta().rec_size {
            return Err(DaliError::InvalidArg(format!(
                "update data is {} bytes, record size is {}",
                data.len(),
                heap.meta().rec_size
            )));
        }
        self.db.locks.lock(self.id, rec, LockMode::Exclusive)?;
        if !heap.is_allocated_in_image(&self.db.image, rec.slot)? {
            return Err(DaliError::NotFound(format!("record {rec}")));
        }
        let addr = heap.meta().slot_addr(rec.slot);
        let _q = self.db.quiesce.read();
        let mut st = self.state.lock();
        let op = begin_op(&mut st, self.id, OpKind::Update, rec);
        let mut before = vec![0u8; data.len()];
        read_persistent(&self.db, addr, &mut before)?;
        physical_update(&self.db, &mut st, self.id, op, addr, data)?;
        commit_op(
            &self.db,
            &mut st,
            self.id,
            op,
            LogicalUndo::HeapUpdate { rec, before },
        )?;
        EngineStats::bump(&self.db.stats.updates);
        Ok(())
    }

    /// Delete a record.
    pub fn delete(&self, rec: RecId) -> Result<()> {
        self.db.check_alive()?;
        let heap = self.db.heap(rec.table)?;
        self.db.locks.lock(self.id, rec, LockMode::Exclusive)?;
        if !heap.is_allocated_in_image(&self.db.image, rec.slot)? {
            return Err(DaliError::NotFound(format!("record {rec}")));
        }
        let addr = heap.meta().slot_addr(rec.slot);
        let _q = self.db.quiesce.read();
        let mut st = self.state.lock();
        let op = begin_op(&mut st, self.id, OpKind::Delete, rec);
        let mut image = vec![0u8; heap.meta().rec_size];
        read_persistent(&self.db, addr, &mut image)?;
        let (word_addr, bit) = heap.meta().bit_word_addr(rec.slot);
        heap.with_alloc_locked(|| -> Result<()> {
            let word = read_bitmap_word(&self.db, word_addr)?;
            physical_update(
                &self.db,
                &mut st,
                self.id,
                op,
                word_addr,
                &(word & !(1 << bit)).to_le_bytes(),
            )
        })?;
        commit_op(
            &self.db,
            &mut st,
            self.id,
            op,
            LogicalUndo::HeapDelete { rec, image },
        )?;
        // The slot becomes reusable only when this transaction finishes.
        st.deferred_frees.push(rec);
        EngineStats::bump(&self.db.stats.deletes);
        Ok(())
    }

    // ---------------------------------------------------------------
    // Commit / abort
    // ---------------------------------------------------------------

    /// Commit: migrate leftover local records plus the commit record to
    /// the system log, flush it (durably, group-committed under
    /// [`DaliConfig::commit_window`](dali_common::DaliConfig) when
    /// `sync_commit` is set), release locks.
    pub fn commit(self) -> Result<()> {
        self.db.check_alive()?;
        let commit_end;
        {
            let _q = self.db.quiesce.read();
            let mut st = self.state.lock();
            if st.cur_op.is_some() {
                return Err(DaliError::InvalidArg(
                    "commit with an operation in progress".into(),
                ));
            }
            let mut batch = st.redo.drain();
            batch.push(LogRecord::TxnCommit { txn: self.id });
            let (_, end) = self.db.syslog.append_batch(&batch);
            commit_end = end;
            st.status = TxnStatus::Committed;
            for rec in std::mem::take(&mut st.deferred_frees) {
                if let Ok(h) = self.db.heap(rec.table) {
                    h.release(rec.slot);
                }
            }
        }
        if self.db.config.sync_commit {
            self.db
                .syslog
                .commit_durable(commit_end, self.db.config.commit_window)?;
        } else {
            self.db.syslog.flush(false)?;
        }
        self.db.locks.unlock_all(self.id);
        self.db.att.remove(self.id);
        EngineStats::bump(&self.db.stats.commits);
        Ok(())
    }

    /// Abort: roll back level by level (physical restores, then logical
    /// compensations), log the compensations and the abort record.
    pub fn abort(self) -> Result<()> {
        self.abort_inner()
    }

    fn abort_inner(&self) -> Result<()> {
        self.db.check_alive()?;
        {
            let _q = self.db.quiesce.read();
            let mut st = self.state.lock();
            rollback_txn(&self.db, &mut st, self.id)?;
            let mut batch = st.redo.drain();
            batch.push(LogRecord::TxnAbort { txn: self.id });
            self.db.syslog.append_batch(&batch);
            st.status = TxnStatus::Aborted;
            for rec in std::mem::take(&mut st.deferred_frees) {
                if let Ok(h) = self.db.heap(rec.table) {
                    h.release(rec.slot);
                }
            }
        }
        self.db.syslog.flush(false)?;
        self.db.locks.unlock_all(self.id);
        self.db.att.remove(self.id);
        EngineStats::bump(&self.db.stats.aborts);
        Ok(())
    }
}

impl Drop for TxnHandle {
    fn drop(&mut self) {
        let active = self.state.lock().status == TxnStatus::Active;
        if active && !self.db.crashed.load(std::sync::atomic::Ordering::Acquire) {
            let _ = self.abort_inner();
        }
    }
}

// -------------------------------------------------------------------
// Operation machinery (free functions so rollback can reuse them)
// -------------------------------------------------------------------

/// Read persistent data on behalf of an operation's internals (an
/// update's before-image, a delete's record image, an insert's bitmap
/// word). Under Read Prechecking *every* read of persistent data is
/// checked against its codeword (§3.1), including these; a mismatch
/// brings the database down for cache recovery like any other failed
/// precheck.
fn read_persistent(db: &Db, addr: DbAddr, buf: &mut [u8]) -> Result<()> {
    if db.config.scheme.prechecks_reads() {
        match db.prot.checked_read(&db.image, addr, buf) {
            Ok(()) => Ok(()),
            Err(DaliError::CorruptionDetected {
                addr: caddr,
                len,
                expected,
                actual,
            }) => {
                crate::corruption::report_corruption(db, &[(caddr, len)])?;
                Err(DaliError::CorruptionDetected {
                    addr: caddr,
                    len,
                    expected,
                    actual,
                })
            }
            Err(e) => Err(e),
        }
    } else {
        db.image.read(addr, buf)
    }
}

/// Read a bitmap word through the persistent-read path.
fn read_bitmap_word(db: &Db, word_addr: DbAddr) -> Result<u32> {
    let mut w = [0u8; 4];
    read_persistent(db, word_addr, &mut w)?;
    Ok(u32::from_le_bytes(w))
}

/// Begin a level-1 operation: allocate its sequence number and emit the
/// OpBegin record into the local redo log.
fn begin_op(st: &mut TxnState, txn: TxnId, kind: OpKind, rec: RecId) -> dali_common::OpSeq {
    debug_assert!(st.cur_op.is_none(), "nested level-1 operations");
    let seq = st.next_op_seq();
    st.cur_op = Some(OpState { seq, kind, rec });
    st.redo.push(LogRecord::OpBegin {
        txn,
        op: seq,
        kind,
        rec,
    });
    seq
}

/// Commit a level-1 operation: migrate its redo records plus the OpCommit
/// record to the system log (one atomic batch), and replace its physical
/// undo with the logical undo description.
fn commit_op(
    db: &Db,
    st: &mut TxnState,
    txn: TxnId,
    op: dali_common::OpSeq,
    undo: LogicalUndo,
) -> Result<()> {
    let mut batch = st.redo.drain();
    batch.push(LogRecord::OpCommit {
        txn,
        op,
        undo: undo.clone(),
    });
    db.syslog.append_batch(&batch);
    st.undo.commit_op(op, undo);
    st.cur_op = None;
    reprotect_op_exposures(db, st)?;
    Ok(())
}

/// Reprotect every page the finished operation exposed (Hardware
/// Protection). Exposure is operation-scoped rather than update-scoped:
/// repeated updates on the same page within one operation pay a single
/// protect/unprotect syscall pair, which is how a page-based system with
/// on-page control information gets its lower mprotect cost (§5.3).
fn reprotect_op_exposures(db: &Db, st: &mut TxnState) -> Result<()> {
    for (addr, len) in std::mem::take(&mut st.op_exposures) {
        db.protector.reprotect(addr, len)?;
    }
    Ok(())
}

/// One complete physical update: the beginUpdate/endUpdate bracket.
///
/// Caller must hold the quiesce lock (shared) and, for bitmap words, the
/// heap's alloc mutex.
fn physical_update(
    db: &Db,
    st: &mut TxnState,
    txn: TxnId,
    op: dali_common::OpSeq,
    addr: DbAddr,
    data: &[u8],
) -> Result<()> {
    let len = data.len();
    // --- beginUpdate ---
    db.protector.expose(addr, len)?;
    st.op_exposures.push((addr, len));
    let (ws, wl) = dali_common::align::widen_to_words(addr.0, len);
    let waddr = DbAddr(ws);
    let mode = db.prot.update_latch_mode();
    let (first, last) = db.prot.geometry().region_span(waddr, wl);
    db.prot.latches().lock_span(first, last, mode);
    // Every fallible step runs inside this closure so the latch span is
    // released on the error paths too.
    let res = (|| -> Result<()> {
        // Capture the before-image *inside* the latch span: under
        // exclusive update latching a concurrent updater could otherwise
        // slip a write between our read and our span acquisition, and the
        // stale before-image would corrupt the codeword delta at
        // endUpdate.
        let mut old = vec![0u8; wl];
        db.image.read(waddr, &mut old)?;
        st.undo.push_physical(op, waddr, old.clone());
        st.cur_update = Some(InFlightUpdate {
            waddr,
            wlen: wl,
            exact_addr: addr,
            exact_len: len,
            latch_first: first,
            latch_last: last,
            latch_mode: mode,
        });

        // CW ReadLog treats a write as a read followed by a write (§4.3):
        // log the pre-update region codewords, computed from the contents
        // the updater saw. We hold the (exclusive) latch span, so the
        // unlatched compute variant is required — the latches are not
        // reentrant.
        if db.config.scheme.logs_read_codewords() {
            let cws = db.prot.compute_region_codewords(&db.image, waddr, wl)?;
            st.redo.push(LogRecord::ReadLog {
                txn,
                addr: waddr,
                len: wl as u32,
                codewords: cws,
            });
            EngineStats::bump(&db.stats.read_log_records);
        }

        // --- the in-place write ---
        db.image.write(addr, data)?;
        // --- endUpdate ---
        db.prot.apply_update(&db.image, waddr, &old)?;
        st.undo.seal_top_physical(op)?;
        st.redo.push(LogRecord::PhysicalRedo {
            txn,
            op,
            addr,
            data: data.to_vec(),
        });
        Ok(())
    })();
    db.prot.latches().unlock_span(first, last, mode);
    // Reprotection is deferred to the end of the operation (see
    // reprotect_op_exposures).
    st.cur_update = None;
    res
}

/// Roll back everything in the transaction's undo log, level by level:
/// physical restores first (they are always on top of the stack), then
/// logical compensations executed as fresh operations.
pub(crate) fn rollback_txn(db: &Db, st: &mut TxnState, txn: TxnId) -> Result<()> {
    // Close the failed operation's exposure window first.
    reprotect_op_exposures(db, st)?;
    // If an operation is in progress, its unmigrated redo records must not
    // reach the system log — but keep the transaction's read log records:
    // the reads really happened, and corruption tracing may only
    // overestimate reads, never underestimate (§4.2).
    if let Some(op) = st.cur_op.take() {
        let kept: Vec<LogRecord> = st
            .redo
            .drain()
            .into_iter()
            .filter(|r| {
                !matches!(
                    r,
                    LogRecord::OpBegin { op: o, .. } | LogRecord::PhysicalRedo { op: o, .. }
                    if *o == op.seq
                )
            })
            .collect();
        for r in kept {
            st.redo.push(r);
        }
    }

    // Snapshot the undo stack before compensating: the compensating
    // operations themselves push fresh logical-undo entries (needed on the
    // *log* so a crash mid-rollback resumes correctly), but processing
    // those in this same loop would undo the compensations just made —
    // an infinite regress. The in-memory entries they leave behind are
    // discarded at the end; the transaction is over.
    let mut entries = Vec::with_capacity(st.undo.len());
    while let Some(e) = st.undo.pop() {
        entries.push(e);
    }
    for entry in entries {
        match entry.kind {
            UndoKind::Physical {
                addr,
                before,
                codeword_pending,
            } => {
                rollback_physical(db, st, txn, entry.op, addr, before, codeword_pending)?;
            }
            UndoKind::Logical(undo) => {
                compensate_logical(db, st, txn, undo)?;
            }
        }
    }
    while st.undo.pop().is_some() {}
    Ok(())
}

/// Restore a physical before-image. If the codeword had already absorbed
/// the update (flag clear), un-apply it and log a compensation redo record
/// so recovery repeats the restore; if the update was still in its window
/// (flag set), restore bytes only (§3.1: "the undo image for this update
/// should be applied without updating the codeword").
fn rollback_physical(
    db: &Db,
    st: &mut TxnState,
    txn: TxnId,
    op: dali_common::OpSeq,
    addr: DbAddr,
    before: Vec<u8>,
    codeword_pending: bool,
) -> Result<()> {
    let mode = db.prot.update_latch_mode();
    let (first, last) = db.prot.geometry().region_span(addr, before.len());
    db.protector.expose(addr, before.len())?;
    db.prot.latches().lock_span(first, last, mode);
    let res = (|| -> Result<()> {
        if codeword_pending {
            db.image.write(addr, &before)?;
        } else {
            let mut cur = vec![0u8; before.len()];
            db.image.read(addr, &mut cur)?;
            db.image.write(addr, &before)?;
            db.prot.unapply_update(&db.image, addr, &cur)?;
            st.redo.push(LogRecord::PhysicalRedo {
                txn,
                op,
                addr,
                data: before.clone(),
            });
        }
        Ok(())
    })();
    db.prot.latches().unlock_span(first, last, mode);
    db.protector.reprotect(addr, before.len())?;
    res
}

/// Execute the compensating operation for a committed operation's logical
/// undo. The compensation is itself a level-1 operation: it logs redo and
/// an OpCommit with *its own* logical undo, so a crash mid-rollback
/// resumes correctly (undoing the compensation re-establishes the original
/// operation, which is then undone again).
fn compensate_logical(db: &Db, st: &mut TxnState, txn: TxnId, undo: LogicalUndo) -> Result<()> {
    match undo {
        LogicalUndo::HeapInsert { rec } => {
            // Compensating delete.
            let heap = db.heap(rec.table)?;
            let addr = heap.meta().slot_addr(rec.slot);
            let op = begin_op(st, txn, OpKind::Delete, rec);
            let mut image = vec![0u8; heap.meta().rec_size];
            db.image.read(addr, &mut image)?;
            let (word_addr, bit) = heap.meta().bit_word_addr(rec.slot);
            heap.with_alloc_locked(|| -> Result<()> {
                let word = db.image.arena().read_u32(word_addr.0)?;
                physical_update(
                    db,
                    st,
                    txn,
                    op,
                    word_addr,
                    &(word & !(1 << bit)).to_le_bytes(),
                )
            })?;
            commit_op(db, st, txn, op, LogicalUndo::HeapDelete { rec, image })?;
            st.deferred_frees.push(rec);
        }
        LogicalUndo::HeapDelete { rec, image } => {
            // Compensating insert into the same slot (still reserved: the
            // delete's free is deferred to end of transaction).
            let heap = db.heap(rec.table)?;
            let addr = heap.meta().slot_addr(rec.slot);
            let op = begin_op(st, txn, OpKind::Insert, rec);
            let (word_addr, bit) = heap.meta().bit_word_addr(rec.slot);
            heap.with_alloc_locked(|| -> Result<()> {
                let word = db.image.arena().read_u32(word_addr.0)?;
                physical_update(
                    db,
                    st,
                    txn,
                    op,
                    word_addr,
                    &(word | (1 << bit)).to_le_bytes(),
                )
            })?;
            physical_update(db, st, txn, op, addr, &image)?;
            commit_op(db, st, txn, op, LogicalUndo::HeapInsert { rec })?;
            st.deferred_frees.retain(|r| *r != rec);
        }
        LogicalUndo::HeapUpdate { rec, before } => {
            // Compensating update writing the before-image back.
            let heap = db.heap(rec.table)?;
            let addr = heap.meta().slot_addr(rec.slot);
            let op = begin_op(st, txn, OpKind::Update, rec);
            let mut cur = vec![0u8; before.len()];
            db.image.read(addr, &mut cur)?;
            physical_update(db, st, txn, op, addr, &before)?;
            commit_op(
                db,
                st,
                txn,
                op,
                LogicalUndo::HeapUpdate { rec, before: cur },
            )?;
        }
    }
    Ok(())
}

/// Apply a logical undo *directly* to the image without transactions,
/// latching, or logging — used by restart recovery's undo phase, which is
/// single-threaded and followed by a checkpoint.
pub(crate) fn apply_logical_undo_direct(db: &Db, undo: &LogicalUndo) -> Result<()> {
    match undo {
        LogicalUndo::HeapInsert { rec } => {
            let heap = db.heap(rec.table)?;
            let (word_addr, bit) = heap.meta().bit_word_addr(rec.slot);
            let word = db.image.arena().read_u32(word_addr.0)?;
            db.image
                .write(word_addr, &(word & !(1 << bit)).to_le_bytes())?;
        }
        LogicalUndo::HeapDelete { rec, image } => {
            let heap = db.heap(rec.table)?;
            let (word_addr, bit) = heap.meta().bit_word_addr(rec.slot);
            let word = db.image.arena().read_u32(word_addr.0)?;
            db.image
                .write(word_addr, &(word | (1 << bit)).to_le_bytes())?;
            db.image.write(heap.meta().slot_addr(rec.slot), image)?;
        }
        LogicalUndo::HeapUpdate { rec, before } => {
            let heap = db.heap(rec.table)?;
            db.image.write(heap.meta().slot_addr(rec.slot), before)?;
        }
    }
    Ok(())
}

/// Restore a physical before-image directly (recovery undo phase).
pub(crate) fn apply_physical_undo_direct(db: &Db, addr: DbAddr, before: &[u8]) -> Result<()> {
    db.image.write(addr, before)
}

/// Recovery-time helper: the undo entries of a transaction, applied
/// directly in reverse (physical first — they are on top of the stack —
/// then logical compensations).
pub(crate) fn rollback_direct(db: &Db, undo: &mut dali_wal::LocalUndoLog) -> Result<()> {
    let mut entries: Vec<UndoEntry> = Vec::new();
    while let Some(e) = undo.pop() {
        entries.push(e);
    }
    for e in &entries {
        match &e.kind {
            UndoKind::Physical { addr, before, .. } => {
                apply_physical_undo_direct(db, *addr, before)?;
            }
            UndoKind::Logical(u) => {
                apply_logical_undo_direct(db, u)?;
            }
        }
    }
    Ok(())
}
