//! Crash-point sweep: recovery must deliver exact committed-prefix
//! semantics from *any* stable-log prefix.
//!
//! A workload of known transactions runs with a commit-time flush; the
//! resulting stable log is then truncated at every record boundary (and
//! at torn mid-frame offsets) in a copy of the database directory, and
//! recovery runs from each. The recovered state must equal the snapshot
//! taken after the last transaction whose commit record survived the
//! truncation — nothing more, nothing less.

use dali_common::{DaliConfig, Lsn, ProtectionScheme, RecId};
use dali_engine::DaliEngine;
use dali_wal::SystemLog;
use std::collections::HashMap;

fn tmpdir(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "dali-cp-{name}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn copy_dir(src: &std::path::Path, dst: &std::path::Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let to = dst.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_dir(&entry.path(), &to);
        } else {
            std::fs::copy(entry.path(), &to).unwrap();
        }
    }
}

fn val(txn_no: u64, rec_no: usize) -> Vec<u8> {
    let mut v = vec![0u8; 64];
    v[0..8].copy_from_slice(&txn_no.to_le_bytes());
    v[8] = rec_no as u8;
    v[63] = (txn_no as u8) ^ (rec_no as u8);
    v
}

#[test]
fn every_log_prefix_recovers_to_the_committed_prefix() {
    let dir = tmpdir("sweep");
    // Tiny segments so the sweep crosses several segment boundaries (the
    // cut then exercises unlink-whole-segment and cut-mid-segment paths).
    let config = DaliConfig::small(&dir)
        .with_scheme(ProtectionScheme::DataCodeword)
        .with_log_segment_bytes(1024);
    let (db, _) = DaliEngine::create(config.clone()).unwrap();
    let t = db.create_table("t", 64, 16).unwrap();

    // Populate 8 records, then run 12 transactions, each updating a few
    // records with values derived from the transaction number. After each
    // commit, snapshot (lsn, expected state).
    let setup = db.begin().unwrap();
    let mut recs = Vec::new();
    let mut state: HashMap<RecId, Vec<u8>> = HashMap::new();
    for i in 0..8usize {
        let r = setup.insert(t, &val(0, i)).unwrap();
        state.insert(r, val(0, i));
        recs.push(r);
    }
    setup.commit().unwrap();
    let mut snapshots: Vec<(Lsn, HashMap<RecId, Vec<u8>>)> =
        vec![(db.current_lsn().unwrap(), state.clone())];

    for txn_no in 1..=12u64 {
        let txn = db.begin().unwrap();
        for k in 0..=(txn_no as usize % 3) {
            let rec = recs[(txn_no as usize * 3 + k) % recs.len()];
            let v = val(txn_no, k);
            txn.update(rec, &v).unwrap();
            state.insert(rec, v);
        }
        txn.commit().unwrap();
        snapshots.push((db.current_lsn().unwrap(), state.clone()));
    }
    db.crash();

    // Enumerate stable-log record boundaries.
    let log_path = dir.join("system.log");
    let records = SystemLog::scan_stable(&log_path, Lsn::ZERO).unwrap();
    let mut points: Vec<u64> = records.iter().map(|(l, _)| l.0).collect();
    let segments = dali_wal::segment::list(&log_path).unwrap();
    assert!(
        segments.len() > 2,
        "workload should span several segments (got {})",
        segments.len()
    );
    points.push(segments.last().unwrap().end().0);
    // Cuts before the first snapshot would leave the table itself
    // partially created; the committed-prefix model below starts at the
    // setup commit.
    points.retain(|&p| p >= snapshots[0].0 .0);

    // Sweep a sample of truncation points: every 3rd boundary plus a torn
    // offset 3 bytes past it (recovery must drop the torn frame).
    for (i, &p) in points.iter().enumerate().step_by(3) {
        for torn in [0u64, 3] {
            let cut = p + torn;
            let case = tmpdir(&format!("case-{i}-{torn}"));
            copy_dir(&dir, &case);
            dali_wal::segment::truncate_at(&case.join("system.log"), Lsn(cut)).unwrap();

            let mut case_config = config.clone();
            case_config.dir = case.clone();
            let (db, outcome) = DaliEngine::open(case_config)
                .unwrap_or_else(|e| panic!("recovery failed at cut {cut}: {e}"));

            // Expected: the snapshot of the last commit at or before the
            // intact prefix — torn bytes never complete a frame, so the
            // boundary `p` is what counts.
            let intact = p;
            let expect = snapshots
                .iter()
                .rev()
                .find(|(l, _)| l.0 <= intact)
                .map(|(_, s)| s)
                .unwrap_or(&snapshots[0].1);

            let check = db.begin().unwrap();
            for (&rec, v) in expect {
                let got = check.read_vec(rec).unwrap_or_else(|e| {
                    panic!("cut {cut}: record {rec} unreadable: {e} ({outcome:?})")
                });
                assert_eq!(&got, v, "cut {cut}, record {rec} ({outcome:?})");
            }
            check.commit().unwrap();
            assert!(db.audit().unwrap().clean(), "cut {cut}");
            drop(db);
            let _ = std::fs::remove_dir_all(&case);
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_tail_garbage_is_discarded() {
    // Garbage appended to the stable log (a torn final flush) must not
    // prevent recovery or resurrect anything.
    let dir = tmpdir("garbage");
    let config = DaliConfig::small(&dir).with_scheme(ProtectionScheme::DataCodeword);
    let (db, _) = DaliEngine::create(config.clone()).unwrap();
    let t = db.create_table("t", 64, 8).unwrap();
    let txn = db.begin().unwrap();
    let rec = txn.insert(t, &val(1, 0)).unwrap();
    txn.commit().unwrap();
    db.crash();

    use std::io::Write;
    let log_dir = dir.join("system.log");
    let last = *dali_wal::segment::list(&log_dir).unwrap().last().unwrap();
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(dali_wal::segment::path(&log_dir, last.base))
        .unwrap();
    f.write_all(&[0x99, 0x13, 0x37, 0xAB, 0xCD]).unwrap();
    drop(f);

    let (db, _) = DaliEngine::open(config).unwrap();
    let check = db.begin().unwrap();
    assert_eq!(check.read_vec(rec).unwrap(), val(1, 0));
    check.commit().unwrap();
}
