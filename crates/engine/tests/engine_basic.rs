//! End-to-end engine tests: transactions, durability, crash recovery.

use dali_common::{DaliConfig, DaliError, ProtectionScheme, RecId, SlotId};
use dali_engine::{DaliEngine, RecoveryMode};

fn tmpdir(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "dali-e2e-{name}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn cfg(name: &str, scheme: ProtectionScheme) -> DaliConfig {
    DaliConfig::small(tmpdir(name)).with_scheme(scheme)
}

fn rec100(tag: u8) -> Vec<u8> {
    let mut v = vec![0u8; 100];
    v[0] = tag;
    v[99] = tag.wrapping_add(1);
    v
}

#[test]
fn create_insert_read_commit() {
    for scheme in ProtectionScheme::ALL {
        let (db, outcome) = DaliEngine::create(cfg("circ", scheme)).unwrap();
        assert_eq!(outcome.mode, RecoveryMode::Fresh);
        let t = db.create_table("t", 100, 128).unwrap();
        let txn = db.begin().unwrap();
        let rec = txn.insert(t, &rec100(7)).unwrap();
        assert_eq!(txn.read_vec(rec).unwrap(), rec100(7));
        txn.commit().unwrap();

        let txn = db.begin().unwrap();
        assert_eq!(txn.read_vec(rec).unwrap(), rec100(7), "{scheme:?}");
        txn.commit().unwrap();
        assert_eq!(db.record_count(t).unwrap(), 1);
    }
}

#[test]
fn update_and_delete() {
    let (db, _) = DaliEngine::create(cfg("ud", ProtectionScheme::DataCodeword)).unwrap();
    let t = db.create_table("t", 100, 128).unwrap();
    let txn = db.begin().unwrap();
    let rec = txn.insert(t, &rec100(1)).unwrap();
    txn.update(rec, &rec100(2)).unwrap();
    assert_eq!(txn.read_vec(rec).unwrap(), rec100(2));
    txn.commit().unwrap();

    let txn = db.begin().unwrap();
    txn.delete(rec).unwrap();
    assert!(matches!(txn.read_vec(rec), Err(DaliError::NotFound(_))));
    txn.commit().unwrap();
    assert_eq!(db.record_count(t).unwrap(), 0);

    // Audit still clean after the full lifecycle.
    assert!(db.audit().unwrap().clean());
}

#[test]
fn abort_rolls_back_everything() {
    let (db, _) = DaliEngine::create(cfg("abort", ProtectionScheme::DataCodeword)).unwrap();
    let t = db.create_table("t", 100, 128).unwrap();

    // Committed baseline record.
    let txn = db.begin().unwrap();
    let keep = txn.insert(t, &rec100(1)).unwrap();
    txn.commit().unwrap();

    let txn = db.begin().unwrap();
    let gone = txn.insert(t, &rec100(2)).unwrap();
    txn.update(keep, &rec100(3)).unwrap();
    txn.delete(keep).unwrap();
    txn.abort().unwrap();

    let txn = db.begin().unwrap();
    assert_eq!(
        txn.read_vec(keep).unwrap(),
        rec100(1),
        "update+delete undone"
    );
    assert!(txn.read_vec(gone).is_err(), "insert undone");
    txn.commit().unwrap();
    assert_eq!(db.record_count(t).unwrap(), 1);
    assert!(db.audit().unwrap().clean(), "codewords survive rollback");
}

#[test]
fn drop_without_commit_aborts() {
    let (db, _) = DaliEngine::create(cfg("drop", ProtectionScheme::Baseline)).unwrap();
    let t = db.create_table("t", 8, 16).unwrap();
    let rec;
    {
        let txn = db.begin().unwrap();
        rec = txn.insert(t, &[9u8; 8]).unwrap();
        // dropped here
    }
    let txn = db.begin().unwrap();
    assert!(txn.read_vec(rec).is_err());
    txn.commit().unwrap();
}

#[test]
fn crash_recovers_committed_loses_uncommitted() {
    for scheme in ProtectionScheme::ALL {
        let dir = tmpdir("crash");
        let config = DaliConfig::small(&dir).with_scheme(scheme);
        let committed;
        {
            let (db, _) = DaliEngine::create(config.clone()).unwrap();
            let t = db.create_table("t", 100, 128).unwrap();
            let txn = db.begin().unwrap();
            committed = txn.insert(t, &rec100(5)).unwrap();
            txn.commit().unwrap();

            // Uncommitted work at crash time.
            let txn = db.begin().unwrap();
            let _ = txn.insert(t, &rec100(6)).unwrap();
            txn.update(committed, &rec100(7)).unwrap();
            std::mem::forget(txn); // crash with the txn open
            db.crash();
        }
        let (db, outcome) = DaliEngine::open(config).unwrap();
        assert_eq!(
            outcome.mode,
            if scheme.logs_read_codewords() {
                RecoveryMode::DeleteTxn
            } else {
                RecoveryMode::Normal
            },
            "{scheme:?}"
        );
        let t = db.table("t").unwrap();
        let txn = db.begin().unwrap();
        assert_eq!(txn.read_vec(committed).unwrap(), rec100(5), "{scheme:?}");
        txn.commit().unwrap();
        assert_eq!(db.record_count(t).unwrap(), 1, "{scheme:?}");
    }
}

#[test]
fn crash_after_checkpoint_and_more_commits() {
    let dir = tmpdir("ckpt-more");
    let config = DaliConfig::small(&dir).with_scheme(ProtectionScheme::ReadLogging);
    let (r1, r2);
    {
        let (db, _) = DaliEngine::create(config.clone()).unwrap();
        let t = db.create_table("t", 100, 128).unwrap();
        let txn = db.begin().unwrap();
        r1 = txn.insert(t, &rec100(1)).unwrap();
        txn.commit().unwrap();
        db.checkpoint().unwrap();

        let txn = db.begin().unwrap();
        r2 = txn.insert(t, &rec100(2)).unwrap();
        txn.update(r1, &rec100(3)).unwrap();
        txn.commit().unwrap();
        db.crash();
    }
    let (db, _) = DaliEngine::open(config).unwrap();
    let txn = db.begin().unwrap();
    assert_eq!(txn.read_vec(r1).unwrap(), rec100(3));
    assert_eq!(txn.read_vec(r2).unwrap(), rec100(2));
    txn.commit().unwrap();
}

#[test]
fn repeated_crash_restart_cycles() {
    let dir = tmpdir("cycles");
    let config = DaliConfig::small(&dir).with_scheme(ProtectionScheme::DataCodeword);
    let (db, _) = DaliEngine::create(config.clone()).unwrap();
    let t = db.create_table("t", 8, 256).unwrap();
    db.crash();
    let mut expected = Vec::new();
    for round in 0u8..5 {
        let (db, outcome) = DaliEngine::open(config.clone()).unwrap();
        assert_eq!(outcome.mode, RecoveryMode::Normal);
        // Verify all previous rounds' data.
        let txn = db.begin().unwrap();
        for (rec, val) in &expected {
            assert_eq!(txn.read_vec(*rec).unwrap(), *val, "round {round}");
        }
        let val = vec![round; 8];
        let rec = txn.insert(t, &val).unwrap();
        txn.commit().unwrap();
        expected.push((rec, val));
        db.crash();
    }
}

#[test]
fn slot_reuse_after_delete_commit() {
    let (db, _) = DaliEngine::create(cfg("reuse", ProtectionScheme::Baseline)).unwrap();
    let t = db.create_table("t", 8, 2).unwrap();
    let txn = db.begin().unwrap();
    let a = txn.insert(t, &[1; 8]).unwrap();
    let _b = txn.insert(t, &[2; 8]).unwrap();
    txn.commit().unwrap();

    // Heap is full.
    let txn = db.begin().unwrap();
    assert!(matches!(
        txn.insert(t, &[3; 8]),
        Err(DaliError::OutOfSpace(_))
    ));
    txn.delete(a).unwrap();
    // Deleted by *this* txn, but the slot is not reusable until commit.
    assert!(txn.insert(t, &[4; 8]).is_err());
    txn.commit().unwrap();

    let txn = db.begin().unwrap();
    let c = txn.insert(t, &[5; 8]).unwrap();
    assert_eq!(c, a, "slot reused after deleter committed");
    txn.commit().unwrap();
}

#[test]
fn lock_conflicts_between_transactions() {
    let (db, _) = DaliEngine::create(cfg("locks", ProtectionScheme::Baseline)).unwrap();
    let t = db.create_table("t", 8, 16).unwrap();
    let txn = db.begin().unwrap();
    let rec = txn.insert(t, &[1; 8]).unwrap();
    txn.commit().unwrap();

    let t1 = db.begin().unwrap();
    t1.update(rec, &[2; 8]).unwrap();
    let t2 = db.begin().unwrap();
    assert!(matches!(
        t2.read_vec(rec),
        Err(DaliError::LockDenied { .. })
    ));
    t1.commit().unwrap();
    assert_eq!(t2.read_vec(rec).unwrap(), vec![2; 8]);
    t2.commit().unwrap();
}

#[test]
fn reading_unallocated_slot_fails() {
    let (db, _) = DaliEngine::create(cfg("unalloc", ProtectionScheme::Baseline)).unwrap();
    let t = db.create_table("t", 8, 16).unwrap();
    let txn = db.begin().unwrap();
    let rec = RecId::new(t, SlotId(3));
    assert!(matches!(txn.read_vec(rec), Err(DaliError::NotFound(_))));
    txn.commit().unwrap();
}

#[test]
fn wrong_record_size_rejected() {
    let (db, _) = DaliEngine::create(cfg("size", ProtectionScheme::Baseline)).unwrap();
    let t = db.create_table("t", 8, 16).unwrap();
    let txn = db.begin().unwrap();
    assert!(txn.insert(t, &[1; 7]).is_err());
    let rec = txn.insert(t, &[1; 8]).unwrap();
    assert!(txn.update(rec, &[1; 9]).is_err());
    let mut small = [0u8; 4];
    assert!(txn.read(rec, &mut small).is_err());
    txn.commit().unwrap();
}

#[test]
fn checkpoints_alternate_images() {
    let dir = tmpdir("pingpong");
    let config = DaliConfig::small(&dir).with_scheme(ProtectionScheme::DataCodeword);
    let (db, _) = DaliEngine::create(config.clone()).unwrap();
    let t = db.create_table("t", 8, 64).unwrap();
    for i in 0..4u8 {
        let txn = db.begin().unwrap();
        txn.insert(t, &[i; 8]).unwrap();
        txn.commit().unwrap();
        db.checkpoint().unwrap();
    }
    // Both image files must exist and be full-size.
    let a = std::fs::metadata(dir.join("ckpt_a.img")).unwrap();
    let b = std::fs::metadata(dir.join("ckpt_b.img")).unwrap();
    assert_eq!(a.len(), config.db_bytes() as u64);
    assert_eq!(b.len(), config.db_bytes() as u64);
    // And recovery from the latest works.
    db.crash();
    let (db, _) = DaliEngine::open(config).unwrap();
    assert_eq!(db.record_count(db.table("t").unwrap()).unwrap(), 4);
}

#[test]
fn many_tables_and_cross_table_txn() {
    let (db, _) = DaliEngine::create(cfg("multi", ProtectionScheme::ReadLogging)).unwrap();
    let a = db.create_table("a", 8, 32).unwrap();
    let b = db.create_table("b", 12, 32).unwrap();
    let c = db.create_table("c", 100, 32).unwrap();
    let txn = db.begin().unwrap();
    let ra = txn.insert(a, &[1; 8]).unwrap();
    let rb = txn.insert(b, &[2; 12]).unwrap();
    let rc = txn.insert(c, &rec100(3)).unwrap();
    txn.commit().unwrap();
    let txn = db.begin().unwrap();
    assert_eq!(txn.read_vec(ra).unwrap(), vec![1; 8]);
    assert_eq!(txn.read_vec(rb).unwrap(), vec![2; 12]);
    assert_eq!(txn.read_vec(rc).unwrap(), rec100(3));
    txn.commit().unwrap();
}

#[test]
fn ddl_survives_crash_without_checkpoint() {
    let dir = tmpdir("ddl");
    let config = DaliConfig::small(&dir).with_scheme(ProtectionScheme::Baseline);
    {
        let (db, _) = DaliEngine::create(config.clone()).unwrap();
        db.create_table("early", 8, 16).unwrap();
        db.checkpoint().unwrap();
        db.create_table("late", 8, 16).unwrap(); // only in the log
        let txn = db.begin().unwrap();
        let r = txn.insert(db.table("late").unwrap(), &[7; 8]).unwrap();
        txn.commit().unwrap();
        db.crash();
        let _ = r;
    }
    let (db, _) = DaliEngine::open(config).unwrap();
    assert!(db.table("early").is_ok());
    let late = db.table("late").unwrap();
    assert_eq!(db.record_count(late).unwrap(), 1);
}

#[test]
fn concurrent_transactions_disjoint_records() {
    let (db, _) = DaliEngine::create(cfg("conc", ProtectionScheme::DataCodeword)).unwrap();
    let t = db.create_table("t", 8, 1024).unwrap();
    let mut handles = vec![];
    for k in 0..4u8 {
        let db = db.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..50 {
                let txn = db.begin().unwrap();
                let rec = txn.insert(t, &[k, i, 0, 0, 0, 0, 0, 0]).unwrap();
                let got = txn.read_vec(rec).unwrap();
                assert_eq!(got[0], k);
                txn.commit().unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(db.record_count(t).unwrap(), 200);
    assert!(db.audit().unwrap().clean());
}

#[test]
fn concurrent_updates_same_region_data_codeword() {
    // Shared-mode protection latches + atomic codeword deltas must stay
    // consistent under concurrent updates to neighbouring records (which
    // share 64-byte protection regions with 8-byte records).
    let (db, _) = DaliEngine::create(cfg("concreg", ProtectionScheme::DataCodeword)).unwrap();
    let t = db.create_table("t", 8, 64).unwrap();
    let mut recs = vec![];
    let txn = db.begin().unwrap();
    for i in 0..16u8 {
        recs.push(txn.insert(t, &[i; 8]).unwrap());
    }
    txn.commit().unwrap();

    let mut handles = vec![];
    for (k, rec) in recs.into_iter().enumerate() {
        let db = db.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..30u8 {
                let txn = db.begin().unwrap();
                txn.update(rec, &[k as u8 ^ i; 8]).unwrap();
                txn.commit().unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert!(db.audit().unwrap().clean());
}

#[test]
fn operations_after_crash_fail() {
    let (db, _) = DaliEngine::create(cfg("dead", ProtectionScheme::Baseline)).unwrap();
    let t = db.create_table("t", 8, 16).unwrap();
    let db2 = db.clone();
    db2.crash();
    assert!(matches!(db.begin(), Err(DaliError::Crashed)));
    assert!(matches!(db.checkpoint(), Err(DaliError::Crashed)));
    let _ = t;
}
