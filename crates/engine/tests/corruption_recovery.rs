//! End-to-end corruption detection and recovery — the paper's §4.
//!
//! Records are 128 bytes (a whole number of 64-byte protection regions)
//! so that corruption of one record never taints a neighbour's region and
//! the expected deletion sets are exact.

use dali_common::{DaliConfig, DaliError, DbAddr, ProtectionScheme, RecId, TxnId};
use dali_engine::{CheckpointOutcome, DaliEngine, RecoveryMode};

const REC: usize = 128;

fn tmpdir(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "dali-corr-{name}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn val(tag: u8) -> Vec<u8> {
    (0..REC).map(|i| tag.wrapping_add(i as u8)).collect()
}

/// Wild write bypassing the prescribed interface (what the fault injector
/// does, inlined here to keep this crate's dev-deps minimal).
fn wild_write(db: &DaliEngine, addr: DbAddr, bytes: &[u8]) {
    db.raw_image().write(addr, bytes).unwrap();
}

struct Setup {
    config: DaliConfig,
    db: DaliEngine,
    x: RecId,
    y: RecId,
    z: RecId,
    w: RecId,
}

/// Common stage: table with four committed records, clean audit taken.
///
/// Parity repair is pinned off: every test here exercises the rungs
/// *below* it (detect-and-crash, delete-transaction recovery, cache
/// recovery), which only run when the stripe cannot heal the damage
/// first. `tests/repair_model.rs` covers the parity rung.
fn setup(name: &str, scheme: ProtectionScheme) -> Setup {
    let config = DaliConfig::small(tmpdir(name))
        .with_scheme(scheme)
        .with_parity_group_size(0);
    let (db, _) = DaliEngine::create(config.clone()).unwrap();
    let t = db.create_table("t", REC, 64).unwrap();
    let txn = db.begin().unwrap();
    let x = txn.insert(t, &val(1)).unwrap();
    let y = txn.insert(t, &val(2)).unwrap();
    let z = txn.insert(t, &val(3)).unwrap();
    let w = txn.insert(t, &val(4)).unwrap();
    txn.commit().unwrap();
    db.checkpoint().unwrap();
    if scheme.maintains_codewords() {
        assert!(db.audit().unwrap().clean());
    }
    Setup {
        config,
        db,
        x,
        y,
        z,
        w,
    }
}

fn read_one(db: &DaliEngine, rec: RecId) -> Vec<u8> {
    let txn = db.begin().unwrap();
    let v = txn.read_vec(rec).unwrap();
    txn.commit().unwrap();
    v
}

#[test]
fn direct_corruption_no_reader_is_repaired_without_deletions() {
    let s = setup("direct", ProtectionScheme::ReadLogging);
    wild_write(&s.db, s.db.record_addr(s.x).unwrap(), &[0xEE; 16]);
    let report = s.db.audit().unwrap();
    assert!(!report.clean());
    // Engine poisoned pending restart.
    assert!(matches!(s.db.begin(), Err(DaliError::Crashed)));

    let (db, outcome) = DaliEngine::open(s.config.clone()).unwrap();
    assert_eq!(outcome.mode, RecoveryMode::DeleteTxn);
    assert!(outcome.deleted_txns.is_empty(), "{outcome:?}");
    assert_eq!(read_one(&db, s.x), val(1), "direct corruption repaired");
    assert!(db.audit().unwrap().clean());
}

#[test]
fn carried_corruption_deletes_the_carrier() {
    let s = setup("carried", ProtectionScheme::ReadLogging);
    wild_write(&s.db, s.db.record_addr(s.x).unwrap(), &[0xEE; 16]);

    // T2 reads corrupt X and writes a derived value into Y.
    let t2 = s.db.begin().unwrap();
    let t2_id = t2.id();
    let dirty = t2.read_vec(s.x).unwrap(); // carries the corruption
    t2.update(s.y, &dirty).unwrap();
    t2.commit().unwrap();

    // A clean transaction on unrelated data.
    let t4 = s.db.begin().unwrap();
    let t4_id = t4.id();
    t4.update(s.w, &val(44)).unwrap();
    t4.commit().unwrap();

    assert!(!s.db.audit().unwrap().clean());
    let (db, outcome) = DaliEngine::open(s.config.clone()).unwrap();
    assert_eq!(outcome.mode, RecoveryMode::DeleteTxn);
    assert_eq!(outcome.deleted_txns, vec![t2_id], "only the carrier dies");
    assert!(!outcome.deleted_txns.contains(&t4_id));

    assert_eq!(read_one(&db, s.x), val(1), "X repaired");
    assert_eq!(read_one(&db, s.y), val(2), "Y's indirect corruption undone");
    assert_eq!(read_one(&db, s.w), val(44), "clean txn survives");
}

#[test]
fn corruption_chain_deletes_every_carrier() {
    let s = setup("chain", ProtectionScheme::ReadLogging);
    wild_write(&s.db, s.db.record_addr(s.x).unwrap(), &[0xEE; 16]);

    let t2 = s.db.begin().unwrap();
    let t2_id = t2.id();
    let d = t2.read_vec(s.x).unwrap();
    t2.update(s.y, &d).unwrap();
    t2.commit().unwrap();

    // T3 never touches X, but reads Y (indirectly corrupted) and writes Z.
    let t3 = s.db.begin().unwrap();
    let t3_id = t3.id();
    let d = t3.read_vec(s.y).unwrap();
    t3.update(s.z, &d).unwrap();
    t3.commit().unwrap();

    assert!(!s.db.audit().unwrap().clean());
    let (db, outcome) = DaliEngine::open(s.config.clone()).unwrap();
    let mut deleted = outcome.deleted_txns.clone();
    deleted.sort_unstable();
    assert_eq!(deleted, vec![t2_id, t3_id]);
    assert_eq!(read_one(&db, s.x), val(1));
    assert_eq!(read_one(&db, s.y), val(2));
    assert_eq!(read_one(&db, s.z), val(3));
}

#[test]
fn conflicting_operation_is_quarantined() {
    let s = setup("quarantine", ProtectionScheme::ReadLogging);

    // T2: clean prefix updates W, then reads corrupt X. Its undo log at
    // recovery holds the W operation.
    wild_write(&s.db, s.db.record_addr(s.x).unwrap(), &[0xEE; 16]);
    let t2 = s.db.begin().unwrap();
    let t2_id = t2.id();
    t2.update(s.w, &val(40)).unwrap(); // pre-corruption op
    let _ = t2.read_vec(s.x).unwrap(); // now corrupt
    t2.commit().unwrap();

    // T5 then updates W: its begin-operation record conflicts with the
    // operation in T2's undo log, so T5 must be quarantined for T2's
    // rollback to be possible (§4.3).
    let t5 = s.db.begin().unwrap();
    let t5_id = t5.id();
    t5.update(s.w, &val(50)).unwrap();
    t5.commit().unwrap();

    assert!(!s.db.audit().unwrap().clean());
    let (db, outcome) = DaliEngine::open(s.config.clone()).unwrap();
    let mut deleted = outcome.deleted_txns.clone();
    deleted.sort_unstable();
    assert_eq!(deleted, vec![t2_id, t5_id]);
    // W rolled all the way back to its pre-T2 value.
    assert_eq!(read_one(&db, s.w), val(4));
}

#[test]
fn cw_readlog_detects_carrier_after_plain_crash_without_audit() {
    // §4.3 extension: with codewords in read records, corruption recovery
    // runs on every restart and catches corruption that occurred after
    // the last audit — no failed audit needed.
    let s = setup("cwcrash", ProtectionScheme::CwReadLogging);
    wild_write(&s.db, s.db.record_addr(s.x).unwrap(), &[0xEE; 16]);

    let t2 = s.db.begin().unwrap();
    let t2_id = t2.id();
    let d = t2.read_vec(s.x).unwrap();
    t2.update(s.y, &d).unwrap();
    t2.commit().unwrap();

    // Plain crash: no audit ever saw the corruption.
    s.db.crash();

    let (db, outcome) = DaliEngine::open(s.config.clone()).unwrap();
    assert_eq!(outcome.mode, RecoveryMode::DeleteTxn);
    assert_eq!(outcome.deleted_txns, vec![t2_id]);
    assert_eq!(read_one(&db, s.x), val(1));
    assert_eq!(read_one(&db, s.y), val(2));
}

#[test]
fn cw_readlog_view_consistency_spares_equal_write() {
    // View-consistency (§4.3): if the data a transaction read is
    // bit-identical in the recovering image, the transaction survives
    // even though a suppressed write touched its region — it read the
    // same value it would have read in the delete history.
    let s = setup("view", ProtectionScheme::CwReadLogging);

    // T2 reads X (clean!) and writes Y. Then corruption hits Z only.
    let t2 = s.db.begin().unwrap();
    let t2_id = t2.id();
    let d = t2.read_vec(s.x).unwrap();
    assert_eq!(d, val(1));
    t2.update(s.y, &val(22)).unwrap();
    t2.commit().unwrap();

    wild_write(&s.db, s.db.record_addr(s.z).unwrap(), &[0xEE; 16]);
    s.db.crash();

    let (db, outcome) = DaliEngine::open(s.config.clone()).unwrap();
    assert_eq!(outcome.mode, RecoveryMode::DeleteTxn);
    assert!(outcome.deleted_txns.is_empty(), "{outcome:?}");
    assert_eq!(read_one(&db, s.y), val(22), "clean write survives");
    assert_eq!(read_one(&db, s.z), val(3), "direct corruption gone");
    assert!(!outcome.deleted_txns.contains(&t2_id));
}

#[test]
fn precheck_failure_triggers_cache_recovery_on_reopen() {
    let s = setup("precheck", ProtectionScheme::ReadPrecheck);
    wild_write(&s.db, s.db.record_addr(s.x).unwrap(), &[0xEE; 16]);

    let txn = s.db.begin().unwrap();
    let err = txn.read_vec(s.x).unwrap_err();
    assert!(matches!(err, DaliError::CorruptionDetected { .. }));
    drop(txn);

    let (db, outcome) = DaliEngine::open(s.config.clone()).unwrap();
    assert_eq!(outcome.mode, RecoveryMode::CacheRecovery);
    assert_eq!(read_one(&db, s.x), val(1));
    assert!(db.audit().unwrap().clean());
}

#[test]
fn data_codeword_audit_failure_cache_recovers() {
    let s = setup("dcw", ProtectionScheme::DataCodeword);
    wild_write(&s.db, s.db.record_addr(s.y).unwrap(), &[0xAA; 8]);
    assert!(!s.db.audit().unwrap().clean());

    let (db, outcome) = DaliEngine::open(s.config.clone()).unwrap();
    assert_eq!(outcome.mode, RecoveryMode::CacheRecovery);
    assert_eq!(read_one(&db, s.y), val(2));
}

#[test]
fn checkpoint_certification_blocks_corrupt_checkpoint() {
    let s = setup("cert", ProtectionScheme::DataCodeword);
    // New committed value, then corruption, then a checkpoint attempt.
    let txn = s.db.begin().unwrap();
    txn.update(s.x, &val(11)).unwrap();
    txn.commit().unwrap();
    wild_write(&s.db, s.db.record_addr(s.y).unwrap(), &[0xAA; 8]);

    match s.db.checkpoint().unwrap() {
        CheckpointOutcome::CorruptionDetected(report) => assert!(!report.clean()),
        other => panic!("expected corruption, got {other:?}"),
    }
    // Recovery starts from the last *certified* checkpoint and replays
    // the committed update.
    let (db, outcome) = DaliEngine::open(s.config.clone()).unwrap();
    assert_eq!(outcome.mode, RecoveryMode::CacheRecovery);
    assert_eq!(read_one(&db, s.x), val(11), "post-ckpt commit survives");
    assert_eq!(read_one(&db, s.y), val(2), "corruption cleaned");
    assert!(db.audit().unwrap().clean());
}

#[test]
fn online_cache_repair_fixes_region_in_place() {
    let s = setup("online", ProtectionScheme::DataCodeword);
    let txn = s.db.begin().unwrap();
    txn.update(s.x, &val(9)).unwrap();
    txn.commit().unwrap();

    let addr = s.db.record_addr(s.x).unwrap();
    wild_write(&s.db, addr, &[0xEE; 32]);
    // Repair online, no restart.
    let replayed = s.db.cache_repair(&[(addr, 32)]).unwrap();
    assert!(replayed > 0);
    assert_eq!(read_one(&s.db, s.x), val(9));
    assert!(s.db.audit().unwrap().clean());
}

#[test]
fn online_cache_repair_aborts_active_transactions() {
    let s = setup("online2", ProtectionScheme::DataCodeword);
    let txn = s.db.begin().unwrap();
    txn.update(s.y, &val(77)).unwrap();

    let addr = s.db.record_addr(s.x).unwrap();
    wild_write(&s.db, addr, &[0xEE; 8]);
    s.db.cache_repair(&[(addr, 8)]).unwrap();

    // The open transaction was rolled back by the repair.
    assert_eq!(read_one(&s.db, s.y), val(2));
    assert!(s.db.audit().unwrap().clean());
    drop(txn);
}

#[test]
fn reads_before_last_clean_audit_are_not_tainted() {
    let s = setup("audit-window", ProtectionScheme::ReadLogging);

    // T2 reads X while it is still clean, writes Y, commits.
    let t2 = s.db.begin().unwrap();
    let t2_id = t2.id();
    let d = t2.read_vec(s.x).unwrap();
    t2.update(s.y, &d).unwrap();
    t2.commit().unwrap();

    // Clean audit *after* T2: Audit_SN moves past T2's records.
    assert!(s.db.audit().unwrap().clean());

    // Corruption arrives afterwards and is caught by the next audit.
    wild_write(&s.db, s.db.record_addr(s.x).unwrap(), &[0xEE; 16]);
    assert!(!s.db.audit().unwrap().clean());

    let (db, outcome) = DaliEngine::open(s.config.clone()).unwrap();
    assert!(
        !outcome.deleted_txns.contains(&t2_id),
        "read predates Audit_SN: {outcome:?}"
    );
    assert_eq!(read_one(&db, s.y), val(1), "T2's write survives");
}

#[test]
fn recovery_is_idempotent_across_crash_during_recovery() {
    // A crash between corruption detection and the completed recovery
    // checkpoint must simply rerun recovery (the marker is cleared only
    // after the mandatory checkpoint).
    let s = setup("idem", ProtectionScheme::ReadLogging);
    wild_write(&s.db, s.db.record_addr(s.x).unwrap(), &[0xEE; 16]);
    let t2 = s.db.begin().unwrap();
    let t2_id = t2.id();
    let d = t2.read_vec(s.x).unwrap();
    t2.update(s.y, &d).unwrap();
    t2.commit().unwrap();
    assert!(!s.db.audit().unwrap().clean());

    // First recovery completes; results must be stable if we recover
    // again after another crash.
    let (db, o1) = DaliEngine::open(s.config.clone()).unwrap();
    assert_eq!(o1.deleted_txns, vec![t2_id]);
    db.crash();
    let (db, o2) = DaliEngine::open(s.config.clone()).unwrap();
    assert_eq!(
        o2.mode,
        RecoveryMode::Normal,
        "marker cleared, normal restart"
    );
    assert!(o2.deleted_txns.is_empty());
    assert_eq!(read_one(&db, s.x), val(1));
    assert_eq!(read_one(&db, s.y), val(2));
}

#[test]
fn deleted_txn_ids_are_reported_for_manual_compensation() {
    // §4.1: "the identity of deleted transactions is then returned to the
    // user to allow manual compensation".
    let s = setup("report", ProtectionScheme::ReadLogging);
    wild_write(&s.db, s.db.record_addr(s.x).unwrap(), &[0xEE; 16]);
    let mut expect: Vec<TxnId> = Vec::new();
    for _ in 0..3 {
        let t = s.db.begin().unwrap();
        expect.push(t.id());
        let d = t.read_vec(s.x).unwrap();
        t.update(s.y, &d).unwrap();
        t.commit().unwrap();
    }
    assert!(!s.db.audit().unwrap().clean());
    let (_db, outcome) = DaliEngine::open(s.config.clone()).unwrap();
    let mut deleted = outcome.deleted_txns.clone();
    deleted.sort_unstable();
    expect.sort_unstable();
    assert_eq!(deleted, expect);
}
