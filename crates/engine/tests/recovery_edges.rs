//! Recovery edge cases around the checkpoint boundary — the paths that
//! make Dali-style local logging subtle (paper §2.1).

use dali_common::{DaliConfig, ProtectionScheme};
use dali_engine::{DaliEngine, RecoveryMode};

fn tmpdir(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "dali-edge-{name}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn val(tag: u8) -> Vec<u8> {
    vec![tag; 64]
}

/// A transaction that spans a checkpoint and never commits: its
/// pre-checkpoint operation's logical undo lives only in the checkpointed
/// ATT, its post-checkpoint operation's undo only in the log. Recovery
/// must roll back both.
#[test]
fn incomplete_txn_spanning_checkpoint_fully_rolled_back() {
    let config = DaliConfig::small(tmpdir("span")).with_scheme(ProtectionScheme::DataCodeword);
    let (db, _) = DaliEngine::create(config.clone()).unwrap();
    let t = db.create_table("t", 64, 32).unwrap();
    let setup = db.begin().unwrap();
    let a = setup.insert(t, &val(1)).unwrap();
    let b = setup.insert(t, &val(2)).unwrap();
    setup.commit().unwrap();

    let txn = db.begin().unwrap();
    txn.update(a, &val(11)).unwrap(); // op committed before the ckpt
    db.checkpoint().unwrap(); // txn is active: its undo log is checkpointed
    txn.update(b, &val(22)).unwrap(); // op committed after the ckpt
    std::mem::forget(txn); // crash with the transaction open
    db.crash();

    let (db, outcome) = DaliEngine::open(config).unwrap();
    assert_eq!(outcome.mode, RecoveryMode::Normal);
    assert_eq!(outcome.rolled_back_txns.len(), 1);
    let check = db.begin().unwrap();
    assert_eq!(
        check.read_vec(a).unwrap(),
        val(1),
        "pre-ckpt op undone via checkpointed ATT"
    );
    assert_eq!(
        check.read_vec(b).unwrap(),
        val(2),
        "post-ckpt op undone via log"
    );
    check.commit().unwrap();
    assert!(db.audit().unwrap().clean());
}

/// A transaction that aborts *after* a checkpoint captured its updates:
/// the checkpoint image contains the aborted updates; the logged
/// compensations must remove them during recovery.
#[test]
fn abort_after_checkpoint_replays_compensations() {
    let config = DaliConfig::small(tmpdir("abortckpt")).with_scheme(ProtectionScheme::DataCodeword);
    let (db, _) = DaliEngine::create(config.clone()).unwrap();
    let t = db.create_table("t", 64, 32).unwrap();
    let setup = db.begin().unwrap();
    let a = setup.insert(t, &val(1)).unwrap();
    setup.commit().unwrap();

    let txn = db.begin().unwrap();
    txn.update(a, &val(99)).unwrap();
    let extra = txn.insert(t, &val(50)).unwrap();
    db.checkpoint().unwrap(); // image now contains the doomed updates
    txn.abort().unwrap(); // compensations logged after the checkpoint
    db.crash();

    let (db, _) = DaliEngine::open(config).unwrap();
    let check = db.begin().unwrap();
    assert_eq!(check.read_vec(a).unwrap(), val(1), "update compensated");
    assert!(check.read_vec(extra).is_err(), "insert compensated");
    check.commit().unwrap();
    assert!(db.audit().unwrap().clean());
}

/// Operation committed before the checkpoint, transaction committed after:
/// recovery sees only the TxnCommit in the log and must keep everything.
#[test]
fn op_before_ckpt_commit_after_ckpt_is_kept() {
    let config = DaliConfig::small(tmpdir("opckpt")).with_scheme(ProtectionScheme::DataCodeword);
    let (db, _) = DaliEngine::create(config.clone()).unwrap();
    let t = db.create_table("t", 64, 32).unwrap();
    let setup = db.begin().unwrap();
    let a = setup.insert(t, &val(1)).unwrap();
    setup.commit().unwrap();

    let txn = db.begin().unwrap();
    txn.update(a, &val(42)).unwrap();
    db.checkpoint().unwrap();
    txn.commit().unwrap();
    db.crash();

    let (db, outcome) = DaliEngine::open(config).unwrap();
    assert!(outcome.rolled_back_txns.is_empty());
    let check = db.begin().unwrap();
    assert_eq!(check.read_vec(a).unwrap(), val(42));
    check.commit().unwrap();
}

/// Deletes across the checkpoint boundary: a record deleted before the
/// checkpoint and a rollback re-insert after it.
#[test]
fn delete_rollback_across_checkpoint() {
    let config = DaliConfig::small(tmpdir("delckpt")).with_scheme(ProtectionScheme::DataCodeword);
    let (db, _) = DaliEngine::create(config.clone()).unwrap();
    let t = db.create_table("t", 64, 32).unwrap();
    let setup = db.begin().unwrap();
    let a = setup.insert(t, &val(7)).unwrap();
    setup.commit().unwrap();

    let txn = db.begin().unwrap();
    txn.delete(a).unwrap();
    db.checkpoint().unwrap(); // image has the delete; ATT has HeapDelete undo
    std::mem::forget(txn);
    db.crash();

    let (db, _) = DaliEngine::open(config).unwrap();
    let check = db.begin().unwrap();
    assert_eq!(
        check.read_vec(a).unwrap(),
        val(7),
        "delete rolled back, image restored"
    );
    check.commit().unwrap();
    let t = db.table("t").unwrap();
    assert_eq!(db.record_count(t).unwrap(), 1);
    assert!(db.audit().unwrap().clean());
}

/// Several checkpoints with no intervening log records: recovery from the
/// latest must be a no-op redo.
#[test]
fn empty_redo_interval() {
    let config = DaliConfig::small(tmpdir("empty")).with_scheme(ProtectionScheme::DataCodeword);
    let (db, _) = DaliEngine::create(config.clone()).unwrap();
    let t = db.create_table("t", 64, 32).unwrap();
    let txn = db.begin().unwrap();
    let a = txn.insert(t, &val(3)).unwrap();
    txn.commit().unwrap();
    db.checkpoint().unwrap();
    db.checkpoint().unwrap();
    db.checkpoint().unwrap();
    db.crash();
    let (db, outcome) = DaliEngine::open(config).unwrap();
    assert!(outcome.rolled_back_txns.is_empty());
    let check = db.begin().unwrap();
    assert_eq!(check.read_vec(a).unwrap(), val(3));
    check.commit().unwrap();
}

/// The recovery checkpoint itself must be recoverable: crash immediately
/// after reopening, twice in a row.
#[test]
fn double_crash_immediately_after_recovery() {
    let config = DaliConfig::small(tmpdir("double")).with_scheme(ProtectionScheme::ReadLogging);
    let (db, _) = DaliEngine::create(config.clone()).unwrap();
    let t = db.create_table("t", 64, 32).unwrap();
    let txn = db.begin().unwrap();
    let a = txn.insert(t, &val(9)).unwrap();
    txn.commit().unwrap();
    db.crash();
    for _ in 0..2 {
        let (db, _) = DaliEngine::open(config.clone()).unwrap();
        let check = db.begin().unwrap();
        assert_eq!(check.read_vec(a).unwrap(), val(9));
        check.commit().unwrap();
        db.crash();
    }
}
