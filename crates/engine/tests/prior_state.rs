//! Prior-state recovery (paper §4.1's second model): return to a
//! transaction-consistent state at a chosen log position, discarding all
//! later work.

use dali_common::{DaliConfig, ProtectionScheme};
use dali_engine::{DaliEngine, RecoveryMode};

fn tmpdir(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "dali-prior-{name}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn val(tag: u8) -> Vec<u8> {
    vec![tag; 64]
}

#[test]
fn discards_everything_after_the_chosen_point() {
    let config = DaliConfig::small(tmpdir("basic")).with_scheme(ProtectionScheme::ReadLogging);
    let (db, _) = DaliEngine::create(config.clone()).unwrap();
    let t = db.create_table("t", 64, 32).unwrap();

    let txn = db.begin().unwrap();
    let keep = txn.insert(t, &val(1)).unwrap();
    txn.commit().unwrap();
    let point = db.current_lsn().unwrap();

    // Work after the point: must vanish.
    let txn = db.begin().unwrap();
    let gone = txn.insert(t, &val(2)).unwrap();
    txn.update(keep, &val(3)).unwrap();
    txn.commit().unwrap();
    db.crash();

    let (db, outcome) = DaliEngine::open_prior_state(config, point).unwrap();
    assert_eq!(outcome.mode, RecoveryMode::PriorState);
    let txn = db.begin().unwrap();
    assert_eq!(
        txn.read_vec(keep).unwrap(),
        val(1),
        "post-point update gone"
    );
    assert!(txn.read_vec(gone).is_err(), "post-point insert gone");
    txn.commit().unwrap();
}

#[test]
fn discarded_future_cannot_resurface() {
    let config = DaliConfig::small(tmpdir("trunc")).with_scheme(ProtectionScheme::Baseline);
    let (db, _) = DaliEngine::create(config.clone()).unwrap();
    let t = db.create_table("t", 64, 32).unwrap();
    let txn = db.begin().unwrap();
    let keep = txn.insert(t, &val(1)).unwrap();
    txn.commit().unwrap();
    let point = db.current_lsn().unwrap();
    let txn = db.begin().unwrap();
    let gone = txn.insert(t, &val(2)).unwrap();
    txn.commit().unwrap();
    db.crash();

    // Recover to the point, then do NEW work, crash, and recover normally:
    // the old future must not come back.
    let (db, _) = DaliEngine::open_prior_state(config.clone(), point).unwrap();
    let txn = db.begin().unwrap();
    let fresh = txn.insert(t, &val(9)).unwrap();
    txn.commit().unwrap();
    db.crash();

    let (db, outcome) = DaliEngine::open(config).unwrap();
    assert_eq!(outcome.mode, RecoveryMode::Normal);
    let txn = db.begin().unwrap();
    assert_eq!(txn.read_vec(keep).unwrap(), val(1));
    assert_eq!(txn.read_vec(fresh).unwrap(), val(9));
    // `gone` may have been re-allocated to `fresh`'s slot; the old value
    // must not exist anywhere.
    if fresh != gone {
        assert!(txn.read_vec(gone).is_err());
    } else {
        assert_eq!(txn.read_vec(gone).unwrap(), val(9));
    }
    txn.commit().unwrap();
}

#[test]
fn point_in_flight_transactions_are_rolled_back() {
    let config = DaliConfig::small(tmpdir("inflight")).with_scheme(ProtectionScheme::Baseline);
    let (db, _) = DaliEngine::create(config.clone()).unwrap();
    let t = db.create_table("t", 64, 32).unwrap();
    let txn = db.begin().unwrap();
    let rec = txn.insert(t, &val(1)).unwrap();
    txn.commit().unwrap();

    // A transaction commits one operation, then the point is captured
    // mid-transaction, then it commits. Prior-state recovery to the point
    // must roll the whole transaction back (transaction consistency).
    let txn = db.begin().unwrap();
    let txn_id = txn.id();
    txn.update(rec, &val(5)).unwrap();
    let point = db.current_lsn().unwrap();
    txn.update(rec, &val(6)).unwrap();
    txn.commit().unwrap();
    db.crash();

    let (db, outcome) = DaliEngine::open_prior_state(config, point).unwrap();
    assert!(outcome.rolled_back_txns.contains(&txn_id));
    let check = db.begin().unwrap();
    assert_eq!(
        check.read_vec(rec).unwrap(),
        val(1),
        "mid-txn point rolls back all of it"
    );
    check.commit().unwrap();
}

#[test]
fn too_old_point_is_rejected() {
    let config = DaliConfig::small(tmpdir("old")).with_scheme(ProtectionScheme::Baseline);
    let (db, _) = DaliEngine::create(config.clone()).unwrap();
    let t = db.create_table("t", 64, 32).unwrap();
    // Advance both checkpoint images past a very early LSN.
    for i in 0..3u8 {
        let txn = db.begin().unwrap();
        txn.insert(t, &val(i)).unwrap();
        txn.commit().unwrap();
        db.checkpoint().unwrap();
    }
    db.crash();
    match DaliEngine::open_prior_state(config, dali_common::Lsn(1)) {
        Err(dali_common::DaliError::RecoveryFailed(msg)) => {
            assert!(msg.contains("old enough"), "{msg}");
        }
        Err(e) => panic!("unexpected error: {e}"),
        Ok(_) => panic!("recovery to a pre-checkpoint LSN must fail"),
    }
}

#[test]
fn prior_state_works_after_corruption_too() {
    // The prior-state model is the blunt instrument for corruption the
    // paper contrasts with delete-transaction recovery: wind back to
    // before the (known) corruption time, losing ALL later transactions.
    let config = DaliConfig::small(tmpdir("corr")).with_scheme(ProtectionScheme::DataCodeword);
    let (db, _) = DaliEngine::create(config.clone()).unwrap();
    let t = db.create_table("t", 64, 32).unwrap();
    let txn = db.begin().unwrap();
    let rec = txn.insert(t, &val(1)).unwrap();
    txn.commit().unwrap();
    let point = db.current_lsn().unwrap();

    // Corruption strikes; a later transaction also commits.
    db.raw_image()
        .write(db.record_addr(rec).unwrap(), &[0xE1, 0xE2, 0xE3])
        .unwrap();
    let txn = db.begin().unwrap();
    txn.insert(t, &val(2)).unwrap();
    txn.commit().unwrap();
    assert!(!db.audit().unwrap().clean());

    let (db, outcome) = DaliEngine::open_prior_state(config, point).unwrap();
    assert_eq!(outcome.mode, RecoveryMode::PriorState);
    let txn = db.begin().unwrap();
    assert_eq!(
        txn.read_vec(rec).unwrap(),
        val(1),
        "image from before corruption"
    );
    txn.commit().unwrap();
    assert!(db.audit().unwrap().clean());
}
