//! End-to-end coverage of the page-local heap layout (`colocate_control`,
//! the §5.3 page-based-system ablation): the whole engine lifecycle must
//! behave identically, just with different page-touch counts.

use dali_common::{DaliConfig, DaliError, ProtectionScheme};
use dali_engine::{DaliEngine, RecoveryMode};

fn tmpdir(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "dali-pl-{name}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn cfg(name: &str, scheme: ProtectionScheme) -> DaliConfig {
    let mut c = DaliConfig::small(tmpdir(name)).with_scheme(scheme);
    c.colocate_control = true;
    c
}

fn val(tag: u8) -> Vec<u8> {
    (0..100).map(|i| tag.wrapping_add(i as u8)).collect()
}

#[test]
fn full_lifecycle_under_page_local_layout() {
    for scheme in ProtectionScheme::ALL {
        let (db, _) = DaliEngine::create(cfg(&format!("life-{scheme:?}"), scheme)).unwrap();
        let t = db.create_table("t", 100, 200).unwrap();
        let txn = db.begin().unwrap();
        let a = txn.insert(t, &val(1)).unwrap();
        let b = txn.insert(t, &val(2)).unwrap();
        txn.update(a, &val(3)).unwrap();
        txn.delete(b).unwrap();
        txn.commit().unwrap();
        let txn = db.begin().unwrap();
        assert_eq!(txn.read_vec(a).unwrap(), val(3), "{scheme:?}");
        assert!(matches!(txn.read_vec(b), Err(DaliError::NotFound(_))));
        txn.commit().unwrap();
        if scheme.maintains_codewords() {
            assert!(db.audit().unwrap().clean(), "{scheme:?}");
        }
    }
}

#[test]
fn crash_recovery_with_page_local_layout() {
    let config = cfg("crash", ProtectionScheme::DataCodeword);
    let rec;
    {
        let (db, _) = DaliEngine::create(config.clone()).unwrap();
        let t = db.create_table("t", 100, 200).unwrap();
        let txn = db.begin().unwrap();
        rec = txn.insert(t, &val(7)).unwrap();
        txn.commit().unwrap();
        db.checkpoint().unwrap();
        let txn = db.begin().unwrap();
        txn.update(rec, &val(8)).unwrap();
        txn.commit().unwrap();
        db.crash();
    }
    let (db, outcome) = DaliEngine::open(config).unwrap();
    assert_eq!(outcome.mode, RecoveryMode::Normal);
    let txn = db.begin().unwrap();
    assert_eq!(txn.read_vec(rec).unwrap(), val(8));
    txn.commit().unwrap();
    assert!(db.audit().unwrap().clean());
}

#[test]
fn ddl_replay_reconstructs_page_local_layout() {
    // A table created after the checkpoint is rebuilt from its CreateTable
    // log record; the layout must be re-inferred correctly.
    let config = cfg("ddl", ProtectionScheme::DataCodeword);
    let rec;
    {
        let (db, _) = DaliEngine::create(config.clone()).unwrap();
        db.create_table("early", 100, 100).unwrap();
        db.checkpoint().unwrap();
        let late = db.create_table("late", 100, 100).unwrap(); // log only
        let txn = db.begin().unwrap();
        rec = txn.insert(late, &val(5)).unwrap();
        txn.commit().unwrap();
        db.crash();
    }
    let (db, _) = DaliEngine::open(config).unwrap();
    let txn = db.begin().unwrap();
    assert_eq!(txn.read_vec(rec).unwrap(), val(5));
    txn.commit().unwrap();
    assert!(db.audit().unwrap().clean());
}

#[test]
fn corruption_recovery_with_page_local_layout() {
    // Parity repair pinned off: this test exercises the delete-transaction
    // rung, which only runs when the stripe cannot heal the damage first.
    let config = cfg("corr", ProtectionScheme::ReadLogging).with_parity_group_size(0);
    let (db, _) = DaliEngine::create(config.clone()).unwrap();
    let t = db.create_table("t", 100, 200).unwrap();
    let txn = db.begin().unwrap();
    let x = txn.insert(t, &val(1)).unwrap();
    let y = txn.insert(t, &val(2)).unwrap();
    txn.commit().unwrap();
    db.checkpoint().unwrap();
    assert!(db.audit().unwrap().clean());

    // A single-word wild write can never cancel in the XOR fold (the
    // record filler here is an arithmetic byte sequence, against which a
    // multi-word arithmetic pattern's deltas WOULD cancel — see
    // tests/parity_blind_spot.rs for the general phenomenon).
    db.raw_image()
        .write(db.record_addr(x).unwrap(), &[0xDE, 0xAD, 0xBE, 0xEF])
        .unwrap();
    let carrier = db.begin().unwrap();
    let cid = carrier.id();
    let d = carrier.read_vec(x).unwrap();
    carrier.update(y, &d).unwrap();
    carrier.commit().unwrap();
    assert!(!db.audit().unwrap().clean());

    let (db, outcome) = DaliEngine::open(config).unwrap();
    assert_eq!(outcome.mode, RecoveryMode::DeleteTxn);
    assert_eq!(outcome.deleted_txns, vec![cid]);
    let txn = db.begin().unwrap();
    assert_eq!(txn.read_vec(x).unwrap(), val(1));
    assert_eq!(txn.read_vec(y).unwrap(), val(2));
    txn.commit().unwrap();
}

#[test]
fn page_local_uses_fewer_pages_per_insert() {
    // The observable §5.3 effect: with mprotect on, inserts expose fewer
    // pages under the page-local layout.
    let count_pages = |colocate: bool, name: &str| -> f64 {
        let mut c = DaliConfig::small(tmpdir(name)).with_scheme(ProtectionScheme::MemoryProtection);
        c.colocate_control = colocate;
        let (db, _) = DaliEngine::create(c).unwrap();
        let t = db.create_table("t", 100, 512).unwrap();
        db.protect_stats().reset();
        let txn = db.begin().unwrap();
        for i in 0..100u8 {
            txn.insert(t, &val(i)).unwrap();
        }
        txn.commit().unwrap();
        let (unprotect, _, _) = db.protect_stats().snapshot();
        unprotect as f64 / 100.0
    };
    let separate = count_pages(false, "sep");
    let colocated = count_pages(true, "col");
    assert!(
        colocated < separate,
        "page-local must need fewer mprotect pairs: {colocated} vs {separate}"
    );
    // An insert under page-local unprotects ~1 page (header + record on
    // the same page, one syscall pair per operation), vs ~2 under the
    // Dali layout (bitmap page + data page).
    assert!(colocated < 1.6, "{colocated}");
    assert!(separate > 1.6, "{separate}");
}
