//! The pre-event-loop thread-per-connection server, kept behind the
//! `legacy-threaded` feature as the scaling baseline `net_scale`
//! measures the readiness-loop server against.
//!
//! Semantics match [`crate::DaliServer`]: same session lifecycle (one
//! txn per connection, `NoTxn`/`TxnAlreadyOpen` misuse errors, errors
//! leave the txn open), same orphan rollback on disconnect, same
//! `Stats`/`Health`/`Metrics` answers (via the shared executor and
//! stats builder). What differs is the execution model: one OS thread
//! per connection, blocking reads, no pipelining overlap (frames are
//! still answered in order — serially), no admission control, no
//! backpressure budgets.

use crate::histogram::LatencyHistograms;
use crate::protocol::{
    encode_response, read_frame, write_frame, HealthReport, Request, Response, WireError,
};
use crate::server::{build_server_stats, execute_engine_request, ServerCounters};
use dali_common::Result;
use dali_engine::{DaliEngine, TxnHandle};
use std::collections::HashMap;
use std::io::BufWriter;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

struct Shared {
    engine: DaliEngine,
    counters: ServerCounters,
    histograms: LatencyHistograms,
    start: Instant,
    stop: AtomicBool,
    /// Live connections, by id: a clone of each session's stream, kept so
    /// shutdown can `Shutdown::Both` sessions parked in `read_frame`
    /// waiting for a client that will never send (an idle client would
    /// otherwise hang the accept thread's session join forever). Sessions
    /// deregister themselves when they finish.
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn_id: AtomicU64,
}

/// A running thread-per-connection server. Dropping (or calling
/// [`shutdown`](Self::shutdown)) stops the accept loop; in-flight
/// sessions are asked to wind down and joined.
pub struct ThreadedServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
}

impl ThreadedServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral loopback port)
    /// and start accepting connections, one service thread each.
    pub fn start(engine: DaliEngine, addr: impl ToSocketAddrs) -> Result<ThreadedServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            engine,
            counters: ServerCounters::default(),
            histograms: LatencyHistograms::new(),
            start: Instant::now(),
            stop: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            next_conn_id: AtomicU64::new(0),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::spawn(move || {
            let mut sessions: Vec<JoinHandle<()>> = Vec::new();
            for conn in listener.incoming() {
                if accept_shared.stop.load(Ordering::Acquire) {
                    break;
                }
                match conn {
                    Ok(stream) => {
                        // Register a stream clone *before* spawning the
                        // session, then re-check the stop flag: stop()
                        // sets the flag and *then* sweeps the map, so a
                        // connection that raced past the flag check above
                        // either lands in the map before the sweep (and is
                        // shut down by it) or sees the flag here and is
                        // shut down inline. A connection whose clone fails
                        // would be unreachable from stop(), so drop it
                        // instead of serving it.
                        let conn_id = accept_shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
                        match stream.try_clone() {
                            Ok(clone) => {
                                accept_shared.conns.lock().unwrap().insert(conn_id, clone);
                            }
                            Err(_) => continue,
                        }
                        if accept_shared.stop.load(Ordering::Acquire) {
                            let _ = stream.shutdown(Shutdown::Both);
                            accept_shared.conns.lock().unwrap().remove(&conn_id);
                            break;
                        }
                        let shared = Arc::clone(&accept_shared);
                        sessions.push(std::thread::spawn(move || {
                            shared.counters.sessions.fetch_add(1, Ordering::Relaxed);
                            Session::new(&shared).serve(stream);
                            shared.counters.sessions.fetch_sub(1, Ordering::Relaxed);
                            shared.conns.lock().unwrap().remove(&conn_id);
                        }));
                    }
                    Err(_) => break,
                }
                // Reap finished session threads so a long-lived server
                // does not accumulate handles.
                sessions.retain(|h| !h.is_finished());
            }
            for h in sessions {
                let _ = h.join();
            }
        });
        Ok(ThreadedServer {
            shared,
            addr,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (use after binding port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine this server fronts.
    pub fn engine(&self) -> &DaliEngine {
        &self.shared.engine
    }

    /// Stop accepting, disconnect open sessions, and join the accept
    /// loop. Sessions parked in a blocking read (an idle client holding
    /// its socket open) see EOF and wind down — their open transactions
    /// are rolled back through the orphan path; clients see the
    /// connection close.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        for (_, conn) in self.shared.conns.lock().unwrap().iter() {
            let _ = conn.shutdown(Shutdown::Both);
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ThreadedServer {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.stop();
        }
    }
}

/// One connection's state: the engine handle and the connection's open
/// transaction, if any.
struct Session<'a> {
    shared: &'a Shared,
    txn: Option<TxnHandle>,
}

impl<'a> Session<'a> {
    fn new(shared: &'a Shared) -> Session<'a> {
        Session { shared, txn: None }
    }

    /// Serve the connection until EOF, a protocol error, or shutdown.
    fn serve(mut self, stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        let mut reader = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        };
        let mut writer = BufWriter::new(stream);
        loop {
            let payload = match read_frame(&mut reader) {
                Ok(Some(p)) => p,
                // Clean EOF: the client hung up at a frame boundary.
                Ok(None) => break,
                // Torn frame / bad checksum / connection reset: there is
                // no trustworthy frame boundary to resume at.
                Err(e) => {
                    let resp = Response::Err(WireError::from(&e));
                    let _ = write_frame(&mut writer, &encode_response(&resp));
                    break;
                }
            };
            let resp = match Request::decode(&payload) {
                Ok(req) => self.execute(req),
                Err(e) => {
                    let resp = Response::Err(WireError::from(&e));
                    let _ = write_frame(&mut writer, &encode_response(&resp));
                    break;
                }
            };
            if write_frame(&mut writer, &encode_response(&resp)).is_err() {
                break;
            }
        }
        // Orphan cleanup: a transaction left open by a dropped (or
        // misbehaving) connection is rolled back level by level through
        // the engine's ATT rollback, releasing all its locks.
        if let Some(txn) = self.txn.take() {
            let _ = txn.abort();
            self.shared
                .counters
                .orphans_rolled_back
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Execute one request against the session, serving the server
    /// verbs from shared state and everything else through the common
    /// engine executor.
    fn execute(&mut self, req: Request) -> Response {
        let tag = req.tag();
        let started = Instant::now();
        let resp = match req {
            Request::Stats => Response::Stats(build_server_stats(
                &self.shared.engine,
                &self.shared.counters,
            )),
            Request::Health => Response::Health(HealthReport {
                healthy: !self.shared.stop.load(Ordering::Acquire)
                    && self.shared.engine.current_lsn().is_ok(),
                conns_open: self.shared.counters.sessions.load(Ordering::Relaxed),
                exec_queue_depth: 0,
                uptime_ns: self.shared.start.elapsed().as_nanos() as u64,
            }),
            Request::Metrics => Response::Metrics(
                self.shared
                    .histograms
                    .report(self.shared.start.elapsed().as_nanos() as u64),
            ),
            req => execute_engine_request(&self.shared.engine, &mut self.txn, req),
        };
        self.shared
            .histograms
            .record(tag, started.elapsed().as_nanos() as u64);
        resp
    }
}
