//! Blocking client for the dali-net wire protocol.
//!
//! One connection, one request in flight, at most one open transaction —
//! the same discipline as an in-process [`TxnHandle`]'s owner. Server
//! errors come back as the structured [`DaliError`] they started as, so
//! retry loops written against the embedded engine (`matches!(e,
//! DaliError::LockDenied { .. })`) work unchanged against the network.
//!
//! [`TxnHandle`]: dali_engine::TxnHandle

use crate::protocol::{
    encode_request, read_frame, write_frame, HealthReport, MetricsReport, RepairSummary, Request,
    Response, ServerStats,
};
use dali_common::{DaliError, RecId, Result, TableId, TxnId};
use std::io::BufWriter;
use std::net::{TcpStream, ToSocketAddrs};

/// Fold transport-level "the peer went away" errors into the structured
/// [`DaliError::ConnectionClosed`], so callers can distinguish a server
/// shutdown (retry elsewhere / surface cleanly) from a torn frame or a
/// local I/O fault.
fn map_closed(e: DaliError) -> DaliError {
    match &e {
        DaliError::Io(io) => match io.kind() {
            std::io::ErrorKind::UnexpectedEof
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::BrokenPipe => DaliError::ConnectionClosed,
            _ => e,
        },
        _ => e,
    }
}

/// A connection to a [`DaliServer`](crate::DaliServer).
pub struct DaliClient {
    reader: TcpStream,
    writer: BufWriter<TcpStream>,
}

impl DaliClient {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<DaliClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = stream.try_clone()?;
        Ok(DaliClient {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// Send one request and wait for its response. A connection the
    /// server closed — mid-request or between requests — surfaces as
    /// [`DaliError::ConnectionClosed`], not a raw I/O error.
    fn call(&mut self, req: &Request) -> Result<Response> {
        write_frame(&mut self.writer, &encode_request(req)).map_err(map_closed)?;
        match read_frame(&mut self.reader).map_err(map_closed)? {
            Some(payload) => Response::decode(&payload),
            None => Err(DaliError::ConnectionClosed),
        }
    }

    /// Send a batch of requests back-to-back, then collect the
    /// responses, which the server returns in receive order. With the
    /// event-driven server the frames overlap in the execution pool up
    /// to the connection's pipeline budget, amortizing round trips.
    pub fn pipeline(&mut self, reqs: &[Request]) -> Result<Vec<Response>> {
        use std::io::Write;
        for req in reqs {
            write_frame(&mut self.writer, &encode_request(req)).map_err(map_closed)?;
        }
        self.writer.flush().map_err(|e| map_closed(e.into()))?;
        let mut resps = Vec::with_capacity(reqs.len());
        for _ in reqs {
            match read_frame(&mut self.reader).map_err(map_closed)? {
                Some(payload) => resps.push(Response::decode(&payload)?),
                None => return Err(DaliError::ConnectionClosed),
            }
        }
        Ok(resps)
    }

    /// Send a request and translate a structured error response back
    /// into the [`DaliError`] it started as.
    fn call_ok(&mut self, req: &Request) -> Result<Response> {
        match self.call(req)? {
            Response::Err(e) => Err(e.into()),
            resp => Ok(resp),
        }
    }

    fn unexpected(resp: Response) -> DaliError {
        DaliError::InvalidArg(format!("protocol: unexpected response {resp:?}"))
    }

    // ---- transaction verbs ----

    /// Begin a transaction on this connection; returns its server-side id.
    pub fn begin(&mut self) -> Result<TxnId> {
        match self.call_ok(&Request::Begin)? {
            Response::Began { txn } => Ok(txn),
            resp => Err(Self::unexpected(resp)),
        }
    }

    /// Read a record.
    pub fn read(&mut self, rec: RecId) -> Result<Vec<u8>> {
        match self.call_ok(&Request::Read { rec })? {
            Response::Data(data) => Ok(data),
            resp => Err(Self::unexpected(resp)),
        }
    }

    /// Insert a record; returns its id.
    pub fn insert(&mut self, table: TableId, data: &[u8]) -> Result<RecId> {
        match self.call_ok(&Request::Insert {
            table,
            data: data.to_vec(),
        })? {
            Response::Inserted { rec } => Ok(rec),
            resp => Err(Self::unexpected(resp)),
        }
    }

    /// Update a record in place.
    pub fn update(&mut self, rec: RecId, data: &[u8]) -> Result<()> {
        match self.call_ok(&Request::Update {
            rec,
            data: data.to_vec(),
        })? {
            Response::Ok => Ok(()),
            resp => Err(Self::unexpected(resp)),
        }
    }

    /// Delete a record.
    pub fn delete(&mut self, rec: RecId) -> Result<()> {
        match self.call_ok(&Request::Delete { rec })? {
            Response::Ok => Ok(()),
            resp => Err(Self::unexpected(resp)),
        }
    }

    /// Take the exclusive record lock up front (read-for-update).
    pub fn lock_exclusive(&mut self, rec: RecId) -> Result<()> {
        match self.call_ok(&Request::LockExclusive { rec })? {
            Response::Ok => Ok(()),
            resp => Err(Self::unexpected(resp)),
        }
    }

    /// Commit the connection's transaction (group-committed server-side
    /// under the engine's commit window).
    pub fn commit(&mut self) -> Result<()> {
        match self.call_ok(&Request::Commit)? {
            Response::Ok => Ok(()),
            resp => Err(Self::unexpected(resp)),
        }
    }

    /// Abort the connection's transaction.
    pub fn abort(&mut self) -> Result<()> {
        match self.call_ok(&Request::Abort)? {
            Response::Ok => Ok(()),
            resp => Err(Self::unexpected(resp)),
        }
    }

    // ---- DDL / catalog ----

    /// Create a table (auto-committed DDL).
    pub fn create_table(
        &mut self,
        name: &str,
        rec_size: usize,
        capacity: usize,
    ) -> Result<TableId> {
        match self.call_ok(&Request::CreateTable {
            name: name.to_string(),
            rec_size: rec_size as u32,
            capacity: capacity as u64,
        })? {
            Response::Table { table } => Ok(table),
            resp => Err(Self::unexpected(resp)),
        }
    }

    /// Look up a table id by name.
    pub fn table(&mut self, name: &str) -> Result<TableId> {
        match self.call_ok(&Request::OpenTable {
            name: name.to_string(),
        })? {
            Response::Table { table } => Ok(table),
            resp => Err(Self::unexpected(resp)),
        }
    }

    /// Number of allocated records in a table.
    pub fn record_count(&mut self, table: TableId) -> Result<usize> {
        match self.call_ok(&Request::RecordCount { table })? {
            Response::Count(n) => Ok(n as usize),
            resp => Err(Self::unexpected(resp)),
        }
    }

    // ---- admin verbs ----

    /// Run a full-database audit; returns `(clean, regions_checked)`.
    pub fn audit(&mut self) -> Result<(bool, u64)> {
        match self.call_ok(&Request::Audit)? {
            Response::Audited {
                clean,
                regions_checked,
            } => Ok((clean, regions_checked)),
            resp => Err(Self::unexpected(resp)),
        }
    }

    /// Online parity repair of one protection region (admin verb):
    /// rebuild it in place from its parity group, falling back to
    /// log-based cache recovery server-side when the group cannot be
    /// trusted. The summary says which rung of the ladder repaired it.
    pub fn repair(&mut self, region: u64) -> Result<RepairSummary> {
        match self.call_ok(&Request::Repair { region })? {
            Response::Repaired(summary) => Ok(summary),
            resp => Err(Self::unexpected(resp)),
        }
    }

    /// Server statistics snapshot.
    pub fn stats(&mut self) -> Result<ServerStats> {
        match self.call_ok(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            resp => Err(Self::unexpected(resp)),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<()> {
        match self.call_ok(&Request::Ping)? {
            Response::Ok => Ok(()),
            resp => Err(Self::unexpected(resp)),
        }
    }

    /// Cheap health probe: server liveness, open connections, and the
    /// execution-queue depth — answered from server state without
    /// touching a table.
    pub fn health(&mut self) -> Result<HealthReport> {
        match self.call_ok(&Request::Health)? {
            Response::Health(h) => Ok(h),
            resp => Err(Self::unexpected(resp)),
        }
    }

    /// Per-verb latency histograms (log₂-ns buckets) since server start.
    pub fn metrics(&mut self) -> Result<MetricsReport> {
        match self.call_ok(&Request::Metrics)? {
            Response::Metrics(m) => Ok(m),
            resp => Err(Self::unexpected(resp)),
        }
    }

    /// Drop the connection *without* closing the open transaction —
    /// simulates a client crash mid-transaction. The server must roll
    /// the orphan back and release its locks.
    pub fn drop_connection(self) {
        // Dropping the streams closes the socket; consuming self makes
        // the intent explicit at call sites.
    }
}
