//! Per-verb latency histograms for the event-driven server.
//!
//! Fixed log₂-nanosecond buckets: a latency of `t` ns lands in bucket
//! `floor(log2(t))` (bucket 0 holds `t <= 1`). Recording is one atomic
//! add on a fixed-size array — no allocation, no locking — so the
//! execution pool can stamp every response without contending. Snapshots
//! are sparse [`VerbMetrics`] rows, and merging two reports is bucketwise
//! addition, which lets a scraper aggregate across servers or intervals
//! without losing percentile fidelity beyond the 2× bucket width.
//!
//! Latency is measured from frame decode to response enqueue, so queue
//! wait in the execution pool is *included*: the histogram reflects what
//! the client experiences, not just verb CPU time.

use crate::protocol::{MetricsReport, VerbMetrics};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log₂ buckets: covers 1 ns .. ~584 years.
pub const BUCKETS: usize = 64;

/// Number of tracked verbs (request tags 0..=16).
pub const VERBS: usize = 17;

/// One verb's distribution: 64 log₂-ns cells plus count/total.
struct VerbHistogram {
    count: AtomicU64,
    total_ns: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl VerbHistogram {
    const fn new() -> VerbHistogram {
        // `AtomicU64` is not Copy; build the array element by element.
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        VerbHistogram {
            count: ZERO,
            total_ns: ZERO,
            buckets: [ZERO; BUCKETS],
        }
    }

    fn record(&self, ns: u64) {
        let bucket = 63u32.saturating_sub(ns.max(1).leading_zeros()) as usize;
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self, verb: u8) -> Option<VerbMetrics> {
        let count = self.count.load(Ordering::Relaxed);
        if count == 0 {
            return None;
        }
        let buckets: Vec<(u8, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((i as u8, n))
            })
            .collect();
        Some(VerbMetrics {
            verb,
            count,
            total_ns: self.total_ns.load(Ordering::Relaxed),
            buckets,
        })
    }
}

/// Lock-free per-verb latency histograms, one cell array per request tag.
pub struct LatencyHistograms {
    verbs: [VerbHistogram; VERBS],
}

impl Default for LatencyHistograms {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistograms {
    pub const fn new() -> LatencyHistograms {
        #[allow(clippy::declare_interior_mutable_const)]
        const V: VerbHistogram = VerbHistogram::new();
        LatencyHistograms { verbs: [V; VERBS] }
    }

    /// Record one completed request of verb `tag` taking `ns` nanoseconds.
    /// Unknown tags are dropped (a decode that produced an unknown tag
    /// never executes anyway).
    pub fn record(&self, tag: u8, ns: u64) {
        if let Some(v) = self.verbs.get(tag as usize) {
            v.record(ns);
        }
    }

    /// Sparse snapshot: one [`VerbMetrics`] row per verb with traffic,
    /// ascending by tag.
    pub fn report(&self, uptime_ns: u64) -> MetricsReport {
        MetricsReport {
            uptime_ns,
            verbs: (0..VERBS as u8)
                .filter_map(|tag| self.verbs[tag as usize].snapshot(tag))
                .collect(),
        }
    }
}

/// Bucketwise merge of two reports (for aggregating across servers or
/// scrape intervals); `uptime_ns` takes the max.
pub fn merge_reports(a: &MetricsReport, b: &MetricsReport) -> MetricsReport {
    let mut out = MetricsReport {
        uptime_ns: a.uptime_ns.max(b.uptime_ns),
        verbs: Vec::new(),
    };
    for tag in 0..=u8::MAX {
        let (ra, rb) = (a.verb(tag), b.verb(tag));
        if ra.is_none() && rb.is_none() {
            continue;
        }
        let mut cells = [0u64; BUCKETS];
        let mut count = 0u64;
        let mut total_ns = 0u64;
        for r in [ra, rb].into_iter().flatten() {
            count += r.count;
            total_ns = total_ns.wrapping_add(r.total_ns);
            for &(i, n) in &r.buckets {
                if let Some(c) = cells.get_mut(i as usize) {
                    *c += n;
                }
            }
        }
        out.verbs.push(VerbMetrics {
            verb: tag,
            count,
            total_ns,
            buckets: cells
                .iter()
                .enumerate()
                .filter_map(|(i, &n)| (n > 0).then_some((i as u8, n)))
                .collect(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_floor_log2() {
        let h = LatencyHistograms::new();
        h.record(13, 0); // clamps to 1 → bucket 0
        h.record(13, 1); // bucket 0
        h.record(13, 2); // bucket 1
        h.record(13, 3); // bucket 1
        h.record(13, 1024); // bucket 10
        h.record(13, 1025); // bucket 10
        h.record(13, u64::MAX); // bucket 63
        let rep = h.report(99);
        assert_eq!(rep.uptime_ns, 99);
        let v = rep.verb(13).expect("ping row");
        assert_eq!(v.count, 7);
        assert_eq!(v.buckets, vec![(0, 2), (1, 2), (10, 2), (63, 1)]);
    }

    #[test]
    fn empty_verbs_are_omitted() {
        let h = LatencyHistograms::new();
        h.record(6, 100);
        let rep = h.report(0);
        assert_eq!(rep.verbs.len(), 1);
        assert_eq!(rep.verbs[0].verb, 6);
        assert!(rep.verb(13).is_none());
    }

    #[test]
    fn unknown_tags_dropped() {
        let h = LatencyHistograms::new();
        h.record(200, 100);
        assert!(h.report(0).verbs.is_empty());
    }

    #[test]
    fn quantiles_from_recorded_latencies() {
        let h = LatencyHistograms::new();
        // 99 fast ops (~1 µs) and one slow outlier (~1 ms).
        for _ in 0..99 {
            h.record(13, 1_000);
        }
        h.record(13, 1_000_000);
        let v = h.report(0).verb(13).unwrap().clone();
        // p50 in the 2^9..2^10 bucket → upper bound 2^10 = 1024 ns.
        assert_eq!(v.quantile(0.50), 1 << 10);
        // p99 still within the fast bucket (99 of 100 ops).
        assert_eq!(v.quantile(0.99), 1 << 10);
        // p100 catches the outlier: 2^19..2^20 → 2^20 ≈ 1.05 ms.
        assert_eq!(v.quantile(1.0), 1 << 20);
        assert_eq!(v.mean_ns(), (99 * 1_000 + 1_000_000) / 100);
    }

    #[test]
    fn merge_is_bucketwise_addition() {
        let h1 = LatencyHistograms::new();
        let h2 = LatencyHistograms::new();
        h1.record(13, 1_000);
        h1.record(6, 2_000);
        h2.record(13, 1_000_000);
        let merged = merge_reports(&h1.report(5), &h2.report(9));
        assert_eq!(merged.uptime_ns, 9);
        let ping = merged.verb(13).unwrap();
        assert_eq!(ping.count, 2);
        assert_eq!(ping.buckets.len(), 2);
        assert_eq!(merged.verb(6).unwrap().count, 1);
        // Merging with an empty report is the identity.
        let id = merge_reports(&h1.report(5), &MetricsReport::default());
        assert_eq!(id.verb(13).unwrap().count, 1);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(LatencyHistograms::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..1_000u64 {
                        h.record(13, i + 1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.report(0).verb(13).unwrap().count, 4_000);
    }
}
