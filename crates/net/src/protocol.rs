//! The wire protocol: request/response enums with a checksummed,
//! length-prefixed binary encoding.
//!
//! Framing mirrors the system log (`crates/wal/src/record.rs`):
//! `[len: u32][checksum: u32][payload]`, little-endian, where `checksum`
//! is an XOR fold of the payload. The checksum catches torn writes on a
//! half-closed socket the same way it catches torn log flushes; a frame
//! that fails length, checksum, or payload validation surfaces as
//! [`DaliError::InvalidArg`] — never a panic — so a malicious or
//! truncated peer cannot take the server down.
//!
//! Every decode helper is bounds-checked and every length field is
//! validated against [`MAX_FRAME`] before any allocation, so garbage
//! lengths cannot trigger huge allocations either.

use bytes::{Buf, BufMut, BytesMut};
use dali_common::{DaliError, DbAddr, RecId, Result, SlotId, TableId, TxnId};
use std::io::{Read, Write};

/// Hard cap on a frame's payload size (largest legitimate payload is a
/// record image plus fixed overhead; 16 MiB leaves room for any record
/// size this engine supports).
pub const MAX_FRAME: usize = 16 << 20;

/// A client request. One transaction per connection at a time: `Begin`
/// opens it, `Commit`/`Abort` close it, and the data verbs operate on
/// the connection's current transaction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Begin a transaction on this connection.
    Begin,
    /// Read a record (shared lock).
    Read { rec: RecId },
    /// Insert a record into a table.
    Insert { table: TableId, data: Vec<u8> },
    /// Update a record in place (exclusive lock).
    Update { rec: RecId, data: Vec<u8> },
    /// Delete a record.
    Delete { rec: RecId },
    /// Take an exclusive lock without reading (read-for-update intent).
    LockExclusive { rec: RecId },
    /// Commit the connection's transaction.
    Commit,
    /// Abort the connection's transaction.
    Abort,
    /// DDL: create a table (auto-committed).
    CreateTable {
        name: String,
        rec_size: u32,
        capacity: u64,
    },
    /// Look up a table id by name.
    OpenTable { name: String },
    /// Number of allocated records in a table.
    RecordCount { table: TableId },
    /// Admin: run a full-database audit.
    Audit,
    /// Admin: engine + log + server counters.
    Stats,
    /// Liveness probe.
    Ping,
    /// Admin: online parity repair of one protection region — rebuild it
    /// in place from its parity group, falling back to log-based cache
    /// recovery when the group cannot be trusted.
    Repair { region: u64 },
    /// Admin: cheap liveness + load probe (answered without touching the
    /// engine's data path).
    Health,
    /// Admin: per-verb latency histograms and loop counters.
    Metrics,
}

/// Server statistics returned by [`Request::Stats`]: the engine's
/// operation counters, the system log's flush/fsync counters (group
/// commit amortization is `fsyncs / durable_commits`), and the server's
/// session bookkeeping.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    pub commits: u64,
    pub aborts: u64,
    /// `sync_data` calls issued by the log.
    pub fsyncs: u64,
    /// Tail-to-file log writes.
    pub log_flushes: u64,
    /// Durable-commit requests served by the log.
    pub durable_commits: u64,
    /// Durable commits that rode a neighbour's fsync.
    pub piggybacked: u64,
    /// Durable commits that waited out a group-commit window as followers.
    pub group_followers: u64,
    /// Currently connected sessions.
    pub sessions: u64,
    /// Transactions rolled back because their connection dropped.
    pub orphans_rolled_back: u64,
    /// Deferred maintenance: non-empty dirty-set shard drains performed.
    pub deferred_drains: u64,
    /// Deferred maintenance: deltas absorbed into an already-dirty
    /// region (the savings coalescing bought).
    pub deferred_coalesced: u64,
    /// Deferred maintenance: high-watermark of any shard's dirty-region
    /// depth.
    pub deferred_max_shard_depth: u64,
    /// Deferred maintenance: raw deltas currently queued.
    pub deferred_pending: u64,
    /// Full-database audit sweeps run (on-demand + checkpoint
    /// certification).
    pub audits_run: u64,
    /// Regions folded-and-compared across all audit sweeps.
    pub audit_regions: u64,
    /// Bytes XOR-folded by audit sweeps.
    pub audit_bytes_folded: u64,
    /// Wall-clock nanoseconds spent inside audit sweeps.
    pub audit_ns: u64,
    /// Regions folded by checkpoint certification sweeps (full + delta).
    pub certify_regions_certified: u64,
    /// Regions delta certifications skipped relative to full sweeps.
    pub certify_regions_skipped: u64,
    /// Exclusive latch brackets taken by audit/certification sweeps.
    pub audit_latch_brackets: u64,
    /// Regions handed to the parity repair path.
    pub repair_attempted: u64,
    /// Regions rebuilt in place from their parity group.
    pub repair_succeeded: u64,
    /// Repair attempts that fell back to log-based recovery.
    pub repair_fell_back: u64,
    /// Bytes written back by successful in-place rebuilds.
    pub repair_bytes_rebuilt: u64,
    /// Parity groups verified by checkpoint certification.
    pub certify_parity_groups: u64,
    /// Connections rejected by admission control (at `net_max_conns`).
    pub conns_rejected: u64,
    /// Frames decoded while an earlier frame from the same connection was
    /// still unanswered — the depth the pipelining budget actually bought.
    pub frames_pipelined: u64,
    /// Times a session's read interest was parked by backpressure
    /// (pipeline budget exhausted or outbound budget exceeded).
    pub read_parks: u64,
    /// Requests currently queued for the execution pool.
    pub exec_queue_depth: u64,
    /// High-watermark of the execution-pool queue depth.
    pub exec_queue_max: u64,
    /// Readiness-loop wakeups across all event workers.
    pub loop_iterations: u64,
    /// High-watermark of any one connection's buffered outbound bytes.
    pub outbound_buffered_max: u64,
    /// Segment files currently retained in the log directory.
    pub log_segments_active: u64,
    /// Segments retired by checkpoint-driven retention since open.
    pub log_segments_retired: u64,
    /// Total bytes of retained log segments on disk.
    pub log_bytes_on_disk: u64,
    /// Worker threads the last restart's parallel redo apply used.
    pub redo_threads_used: u64,
    /// Wall-clock nanoseconds of the last restart's redo apply phase.
    pub redo_parallel_ns: u64,
}

/// Outcome of a [`Request::Repair`] — a wire mirror of the engine's
/// `RepairOutcome`, flattened to counters so the protocol stays free of
/// engine types.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RepairSummary {
    /// Whole batch stayed on the parity rung (no WAL replay).
    pub in_place: bool,
    /// Regions rebuilt from parity before any fallback.
    pub regions_rebuilt: u64,
    /// Bytes written back by parity rebuilds.
    pub bytes_rebuilt: u64,
    /// Stable-log records replayed by a fallback (0 when in place).
    pub records_replayed: u64,
}

/// Outcome of a [`Request::Health`] probe — answered from server
/// counters alone, so it stays cheap under load and meaningful when the
/// data path is wedged.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HealthReport {
    /// The server is accepting work (not shutting down, engine alive).
    pub healthy: bool,
    /// Connections currently open.
    pub conns_open: u64,
    /// Requests queued for the execution pool right now.
    pub exec_queue_depth: u64,
    /// Nanoseconds since the server started.
    pub uptime_ns: u64,
}

/// Per-verb latency distribution inside a [`MetricsReport`].
///
/// `buckets` are log₂-nanosecond histogram cells: `(i, n)` counts `n`
/// requests whose decode→response latency fell in `[2^i, 2^(i+1))` ns.
/// Only non-zero cells cross the wire; bucketwise addition merges
/// reports from different servers or scrape intervals.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VerbMetrics {
    /// The request tag this row describes (`Request` encoding tag).
    pub verb: u8,
    /// Requests completed.
    pub count: u64,
    /// Sum of latencies in nanoseconds (for means; percentiles come from
    /// the buckets).
    pub total_ns: u64,
    /// Sparse `(log2_bucket, count)` cells, ascending by bucket.
    pub buckets: Vec<(u8, u64)>,
}

impl VerbMetrics {
    /// Upper-bound latency (ns) of the bucket containing the `q`-quantile
    /// request (`q` in `[0, 1]`), or 0 when empty. p50 = `quantile(0.50)`,
    /// p99 = `quantile(0.99)`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(bucket, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return 1u64 << (bucket as u32 + 1).min(63);
            }
        }
        self.buckets
            .last()
            .map(|&(b, _)| 1u64 << (b as u32 + 1).min(63))
            .unwrap_or(0)
    }

    /// Mean latency in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// Outcome of a [`Request::Metrics`] — the server's per-verb latency
/// histograms plus uptime, mergeable across servers by verb.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsReport {
    /// Nanoseconds since the server started.
    pub uptime_ns: u64,
    /// One row per verb that has completed at least one request,
    /// ascending by verb tag.
    pub verbs: Vec<VerbMetrics>,
}

impl MetricsReport {
    /// The row for a verb tag, if any requests of that verb completed.
    pub fn verb(&self, tag: u8) -> Option<&VerbMetrics> {
        self.verbs.iter().find(|v| v.verb == tag)
    }
}

/// A server response.
///
/// `Stats` dwarfs the other variants (32 counters), but responses are
/// transient — decoded, delivered, dropped — and never stored in bulk,
/// so boxing it would buy nothing and cost an allocation per stats poll.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// The request succeeded with nothing to return.
    Ok,
    /// `Begin` succeeded; the server-side transaction id (diagnostics —
    /// clients retry by reconnecting the verb sequence, not by id).
    Began { txn: TxnId },
    /// A record's contents.
    Data(Vec<u8>),
    /// An insert's record id.
    Inserted { rec: RecId },
    /// A table id (create/open).
    Table { table: TableId },
    /// A record count.
    Count(u64),
    /// Audit outcome: clean flag and number of regions checked.
    Audited { clean: bool, regions_checked: u64 },
    /// Statistics snapshot.
    Stats(ServerStats),
    /// Repair outcome: how the region was brought back.
    Repaired(RepairSummary),
    /// The request failed; the error is structured so client retry loops
    /// can match on it exactly like in-process code.
    Err(WireError),
    /// Liveness + load probe outcome.
    Health(HealthReport),
    /// Per-verb latency histograms.
    Metrics(MetricsReport),
}

/// Structured errors carried over the wire — a mirror of [`DaliError`]
/// plus the protocol-level failure modes. Conversions both ways keep
/// client retry loops (`matches!(e, DaliError::LockDenied { .. })`)
/// identical to the in-process ones in `crates/workload`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    LockDenied {
        txn: TxnId,
        rec: RecId,
    },
    CorruptionDetected {
        addr: DbAddr,
        len: u64,
        expected: u32,
        actual: u32,
    },
    WriteFault {
        addr: DbAddr,
    },
    TxnAborted(TxnId),
    NotFound(String),
    OutOfSpace(String),
    InvalidArg(String),
    RecoveryFailed(String),
    Crashed,
    Io(String),
    /// The connection has no open transaction for a data verb, or an
    /// open one where `Begin` requires none.
    NoTxn,
    TxnAlreadyOpen,
    /// The peer closed the connection (cleanly or mid-request). Never
    /// sent by the server — the client synthesizes it when a read or
    /// write hits EOF/reset — but it has a wire tag so a proxy that does
    /// send it round-trips.
    ConnectionClosed,
}

impl From<&DaliError> for WireError {
    fn from(e: &DaliError) -> WireError {
        match e {
            DaliError::Io(err) => WireError::Io(err.to_string()),
            DaliError::CorruptionDetected {
                addr,
                len,
                expected,
                actual,
            } => WireError::CorruptionDetected {
                addr: *addr,
                len: *len as u64,
                expected: *expected,
                actual: *actual,
            },
            DaliError::WriteFault { addr } => WireError::WriteFault { addr: *addr },
            DaliError::TxnAborted(t) => WireError::TxnAborted(*t),
            DaliError::LockDenied { txn, rec } => WireError::LockDenied {
                txn: *txn,
                rec: *rec,
            },
            DaliError::NotFound(s) => WireError::NotFound(s.clone()),
            DaliError::OutOfSpace(s) => WireError::OutOfSpace(s.clone()),
            DaliError::InvalidArg(s) => WireError::InvalidArg(s.clone()),
            DaliError::RecoveryFailed(s) => WireError::RecoveryFailed(s.clone()),
            DaliError::Crashed => WireError::Crashed,
            DaliError::ConnectionClosed => WireError::ConnectionClosed,
        }
    }
}

impl From<DaliError> for WireError {
    fn from(e: DaliError) -> WireError {
        WireError::from(&e)
    }
}

impl From<WireError> for DaliError {
    fn from(e: WireError) -> DaliError {
        match e {
            WireError::Io(s) => DaliError::Io(std::io::Error::other(s)),
            WireError::CorruptionDetected {
                addr,
                len,
                expected,
                actual,
            } => DaliError::CorruptionDetected {
                addr,
                len: len as usize,
                expected,
                actual,
            },
            WireError::WriteFault { addr } => DaliError::WriteFault { addr },
            WireError::TxnAborted(t) => DaliError::TxnAborted(t),
            WireError::LockDenied { txn, rec } => DaliError::LockDenied { txn, rec },
            WireError::NotFound(s) => DaliError::NotFound(s),
            WireError::OutOfSpace(s) => DaliError::OutOfSpace(s),
            WireError::InvalidArg(s) => DaliError::InvalidArg(s),
            WireError::RecoveryFailed(s) => DaliError::RecoveryFailed(s),
            WireError::Crashed => DaliError::Crashed,
            WireError::NoTxn => DaliError::InvalidArg("no transaction open on connection".into()),
            WireError::TxnAlreadyOpen => {
                DaliError::InvalidArg("transaction already open on connection".into())
            }
            WireError::ConnectionClosed => DaliError::ConnectionClosed,
        }
    }
}

// -------------------------------------------------------------------
// Encoding
// -------------------------------------------------------------------

fn bad(msg: impl Into<String>) -> DaliError {
    DaliError::InvalidArg(format!("protocol: {}", msg.into()))
}

impl Request {
    /// Encode the payload (without framing) into `buf`.
    pub fn encode(&self, buf: &mut BytesMut) {
        match self {
            Request::Begin => buf.put_u8(0),
            Request::Read { rec } => {
                buf.put_u8(1);
                put_rec(buf, *rec);
            }
            Request::Insert { table, data } => {
                buf.put_u8(2);
                buf.put_u32_le(table.0);
                put_blob(buf, data);
            }
            Request::Update { rec, data } => {
                buf.put_u8(3);
                put_rec(buf, *rec);
                put_blob(buf, data);
            }
            Request::Delete { rec } => {
                buf.put_u8(4);
                put_rec(buf, *rec);
            }
            Request::LockExclusive { rec } => {
                buf.put_u8(5);
                put_rec(buf, *rec);
            }
            Request::Commit => buf.put_u8(6),
            Request::Abort => buf.put_u8(7),
            Request::CreateTable {
                name,
                rec_size,
                capacity,
            } => {
                buf.put_u8(8);
                put_blob(buf, name.as_bytes());
                buf.put_u32_le(*rec_size);
                buf.put_u64_le(*capacity);
            }
            Request::OpenTable { name } => {
                buf.put_u8(9);
                put_blob(buf, name.as_bytes());
            }
            Request::RecordCount { table } => {
                buf.put_u8(10);
                buf.put_u32_le(table.0);
            }
            Request::Audit => buf.put_u8(11),
            Request::Stats => buf.put_u8(12),
            Request::Ping => buf.put_u8(13),
            Request::Repair { region } => {
                buf.put_u8(14);
                buf.put_u64_le(*region);
            }
            Request::Health => buf.put_u8(15),
            Request::Metrics => buf.put_u8(16),
        }
    }

    /// The encoding tag — the key [`MetricsReport`] rows use for verbs.
    pub fn tag(&self) -> u8 {
        match self {
            Request::Begin => 0,
            Request::Read { .. } => 1,
            Request::Insert { .. } => 2,
            Request::Update { .. } => 3,
            Request::Delete { .. } => 4,
            Request::LockExclusive { .. } => 5,
            Request::Commit => 6,
            Request::Abort => 7,
            Request::CreateTable { .. } => 8,
            Request::OpenTable { .. } => 9,
            Request::RecordCount { .. } => 10,
            Request::Audit => 11,
            Request::Stats => 12,
            Request::Ping => 13,
            Request::Repair { .. } => 14,
            Request::Health => 15,
            Request::Metrics => 16,
        }
    }

    /// Human-readable verb name for a tag (metrics display).
    pub fn tag_name(tag: u8) -> &'static str {
        match tag {
            0 => "begin",
            1 => "read",
            2 => "insert",
            3 => "update",
            4 => "delete",
            5 => "lock_exclusive",
            6 => "commit",
            7 => "abort",
            8 => "create_table",
            9 => "open_table",
            10 => "record_count",
            11 => "audit",
            12 => "stats",
            13 => "ping",
            14 => "repair",
            15 => "health",
            16 => "metrics",
            _ => "unknown",
        }
    }

    /// Decode a payload produced by [`encode`](Self::encode). Total: any
    /// malformed input returns an error.
    pub fn decode(mut buf: &[u8]) -> Result<Request> {
        let req = Self::decode_inner(&mut buf)?;
        if !buf.is_empty() {
            return Err(bad(format!("{} trailing bytes after request", buf.len())));
        }
        Ok(req)
    }

    fn decode_inner(buf: &mut &[u8]) -> Result<Request> {
        let tag = get_u8(buf)?;
        Ok(match tag {
            0 => Request::Begin,
            1 => Request::Read { rec: get_rec(buf)? },
            2 => Request::Insert {
                table: TableId(get_u32(buf)?),
                data: get_blob(buf)?,
            },
            3 => Request::Update {
                rec: get_rec(buf)?,
                data: get_blob(buf)?,
            },
            4 => Request::Delete { rec: get_rec(buf)? },
            5 => Request::LockExclusive { rec: get_rec(buf)? },
            6 => Request::Commit,
            7 => Request::Abort,
            8 => Request::CreateTable {
                name: get_string(buf)?,
                rec_size: get_u32(buf)?,
                capacity: get_u64(buf)?,
            },
            9 => Request::OpenTable {
                name: get_string(buf)?,
            },
            10 => Request::RecordCount {
                table: TableId(get_u32(buf)?),
            },
            11 => Request::Audit,
            12 => Request::Stats,
            13 => Request::Ping,
            14 => Request::Repair {
                region: get_u64(buf)?,
            },
            15 => Request::Health,
            16 => Request::Metrics,
            _ => return Err(bad(format!("unknown request tag {tag}"))),
        })
    }
}

impl Response {
    /// Encode the payload (without framing) into `buf`.
    pub fn encode(&self, buf: &mut BytesMut) {
        match self {
            Response::Ok => buf.put_u8(0),
            Response::Began { txn } => {
                buf.put_u8(1);
                buf.put_u64_le(txn.0);
            }
            Response::Data(data) => {
                buf.put_u8(2);
                put_blob(buf, data);
            }
            Response::Inserted { rec } => {
                buf.put_u8(3);
                put_rec(buf, *rec);
            }
            Response::Table { table } => {
                buf.put_u8(4);
                buf.put_u32_le(table.0);
            }
            Response::Count(n) => {
                buf.put_u8(5);
                buf.put_u64_le(*n);
            }
            Response::Audited {
                clean,
                regions_checked,
            } => {
                buf.put_u8(6);
                buf.put_u8(*clean as u8);
                buf.put_u64_le(*regions_checked);
            }
            Response::Stats(s) => {
                buf.put_u8(7);
                for v in [
                    s.commits,
                    s.aborts,
                    s.fsyncs,
                    s.log_flushes,
                    s.durable_commits,
                    s.piggybacked,
                    s.group_followers,
                    s.sessions,
                    s.orphans_rolled_back,
                    s.deferred_drains,
                    s.deferred_coalesced,
                    s.deferred_max_shard_depth,
                    s.deferred_pending,
                    s.audits_run,
                    s.audit_regions,
                    s.audit_bytes_folded,
                    s.audit_ns,
                    s.certify_regions_certified,
                    s.certify_regions_skipped,
                    s.audit_latch_brackets,
                    s.repair_attempted,
                    s.repair_succeeded,
                    s.repair_fell_back,
                    s.repair_bytes_rebuilt,
                    s.certify_parity_groups,
                    s.conns_rejected,
                    s.frames_pipelined,
                    s.read_parks,
                    s.exec_queue_depth,
                    s.exec_queue_max,
                    s.loop_iterations,
                    s.outbound_buffered_max,
                    s.log_segments_active,
                    s.log_segments_retired,
                    s.log_bytes_on_disk,
                    s.redo_threads_used,
                    s.redo_parallel_ns,
                ] {
                    buf.put_u64_le(v);
                }
            }
            Response::Err(e) => {
                buf.put_u8(8);
                e.encode(buf);
            }
            Response::Repaired(r) => {
                buf.put_u8(9);
                buf.put_u8(r.in_place as u8);
                buf.put_u64_le(r.regions_rebuilt);
                buf.put_u64_le(r.bytes_rebuilt);
                buf.put_u64_le(r.records_replayed);
            }
            Response::Health(h) => {
                buf.put_u8(10);
                buf.put_u8(h.healthy as u8);
                buf.put_u64_le(h.conns_open);
                buf.put_u64_le(h.exec_queue_depth);
                buf.put_u64_le(h.uptime_ns);
            }
            Response::Metrics(m) => {
                buf.put_u8(11);
                buf.put_u64_le(m.uptime_ns);
                buf.put_u32_le(m.verbs.len() as u32);
                for v in &m.verbs {
                    buf.put_u8(v.verb);
                    buf.put_u64_le(v.count);
                    buf.put_u64_le(v.total_ns);
                    buf.put_u32_le(v.buckets.len() as u32);
                    for &(bucket, n) in &v.buckets {
                        buf.put_u8(bucket);
                        buf.put_u64_le(n);
                    }
                }
            }
        }
    }

    /// Decode a payload produced by [`encode`](Self::encode).
    pub fn decode(mut buf: &[u8]) -> Result<Response> {
        let resp = Self::decode_inner(&mut buf)?;
        if !buf.is_empty() {
            return Err(bad(format!("{} trailing bytes after response", buf.len())));
        }
        Ok(resp)
    }

    fn decode_inner(buf: &mut &[u8]) -> Result<Response> {
        let tag = get_u8(buf)?;
        Ok(match tag {
            0 => Response::Ok,
            1 => Response::Began {
                txn: TxnId(get_u64(buf)?),
            },
            2 => Response::Data(get_blob(buf)?),
            3 => Response::Inserted { rec: get_rec(buf)? },
            4 => Response::Table {
                table: TableId(get_u32(buf)?),
            },
            5 => Response::Count(get_u64(buf)?),
            6 => Response::Audited {
                clean: get_u8(buf)? != 0,
                regions_checked: get_u64(buf)?,
            },
            7 => Response::Stats(ServerStats {
                commits: get_u64(buf)?,
                aborts: get_u64(buf)?,
                fsyncs: get_u64(buf)?,
                log_flushes: get_u64(buf)?,
                durable_commits: get_u64(buf)?,
                piggybacked: get_u64(buf)?,
                group_followers: get_u64(buf)?,
                sessions: get_u64(buf)?,
                orphans_rolled_back: get_u64(buf)?,
                deferred_drains: get_u64(buf)?,
                deferred_coalesced: get_u64(buf)?,
                deferred_max_shard_depth: get_u64(buf)?,
                deferred_pending: get_u64(buf)?,
                audits_run: get_u64(buf)?,
                audit_regions: get_u64(buf)?,
                audit_bytes_folded: get_u64(buf)?,
                audit_ns: get_u64(buf)?,
                certify_regions_certified: get_u64(buf)?,
                certify_regions_skipped: get_u64(buf)?,
                audit_latch_brackets: get_u64(buf)?,
                repair_attempted: get_u64(buf)?,
                repair_succeeded: get_u64(buf)?,
                repair_fell_back: get_u64(buf)?,
                repair_bytes_rebuilt: get_u64(buf)?,
                certify_parity_groups: get_u64(buf)?,
                conns_rejected: get_u64(buf)?,
                frames_pipelined: get_u64(buf)?,
                read_parks: get_u64(buf)?,
                exec_queue_depth: get_u64(buf)?,
                exec_queue_max: get_u64(buf)?,
                loop_iterations: get_u64(buf)?,
                outbound_buffered_max: get_u64(buf)?,
                log_segments_active: get_u64(buf)?,
                log_segments_retired: get_u64(buf)?,
                log_bytes_on_disk: get_u64(buf)?,
                redo_threads_used: get_u64(buf)?,
                redo_parallel_ns: get_u64(buf)?,
            }),
            8 => Response::Err(WireError::decode_inner(buf)?),
            9 => Response::Repaired(RepairSummary {
                in_place: get_u8(buf)? != 0,
                regions_rebuilt: get_u64(buf)?,
                bytes_rebuilt: get_u64(buf)?,
                records_replayed: get_u64(buf)?,
            }),
            10 => Response::Health(HealthReport {
                healthy: get_u8(buf)? != 0,
                conns_open: get_u64(buf)?,
                exec_queue_depth: get_u64(buf)?,
                uptime_ns: get_u64(buf)?,
            }),
            11 => {
                let uptime_ns = get_u64(buf)?;
                let n_verbs = get_u32(buf)? as usize;
                // 17 verbs exist; 256 bounds any future tag space.
                if n_verbs > 256 {
                    return Err(bad(format!("metrics report with {n_verbs} verbs")));
                }
                let mut verbs = Vec::with_capacity(n_verbs);
                for _ in 0..n_verbs {
                    let verb = get_u8(buf)?;
                    let count = get_u64(buf)?;
                    let total_ns = get_u64(buf)?;
                    let n_buckets = get_u32(buf)? as usize;
                    // Latencies are log2-ns cells; 64 covers u64 range.
                    if n_buckets > 64 {
                        return Err(bad(format!("verb row with {n_buckets} buckets")));
                    }
                    let mut buckets = Vec::with_capacity(n_buckets);
                    for _ in 0..n_buckets {
                        buckets.push((get_u8(buf)?, get_u64(buf)?));
                    }
                    verbs.push(VerbMetrics {
                        verb,
                        count,
                        total_ns,
                        buckets,
                    });
                }
                Response::Metrics(MetricsReport { uptime_ns, verbs })
            }
            _ => return Err(bad(format!("unknown response tag {tag}"))),
        })
    }
}

impl WireError {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            WireError::LockDenied { txn, rec } => {
                buf.put_u8(0);
                buf.put_u64_le(txn.0);
                put_rec(buf, *rec);
            }
            WireError::CorruptionDetected {
                addr,
                len,
                expected,
                actual,
            } => {
                buf.put_u8(1);
                buf.put_u64_le(addr.0 as u64);
                buf.put_u64_le(*len);
                buf.put_u32_le(*expected);
                buf.put_u32_le(*actual);
            }
            WireError::WriteFault { addr } => {
                buf.put_u8(2);
                buf.put_u64_le(addr.0 as u64);
            }
            WireError::TxnAborted(t) => {
                buf.put_u8(3);
                buf.put_u64_le(t.0);
            }
            WireError::NotFound(s) => {
                buf.put_u8(4);
                put_blob(buf, s.as_bytes());
            }
            WireError::OutOfSpace(s) => {
                buf.put_u8(5);
                put_blob(buf, s.as_bytes());
            }
            WireError::InvalidArg(s) => {
                buf.put_u8(6);
                put_blob(buf, s.as_bytes());
            }
            WireError::RecoveryFailed(s) => {
                buf.put_u8(7);
                put_blob(buf, s.as_bytes());
            }
            WireError::Crashed => buf.put_u8(8),
            WireError::Io(s) => {
                buf.put_u8(9);
                put_blob(buf, s.as_bytes());
            }
            WireError::NoTxn => buf.put_u8(10),
            WireError::TxnAlreadyOpen => buf.put_u8(11),
            WireError::ConnectionClosed => buf.put_u8(12),
        }
    }

    fn decode_inner(buf: &mut &[u8]) -> Result<WireError> {
        let tag = get_u8(buf)?;
        Ok(match tag {
            0 => WireError::LockDenied {
                txn: TxnId(get_u64(buf)?),
                rec: get_rec(buf)?,
            },
            1 => WireError::CorruptionDetected {
                addr: DbAddr(get_u64(buf)? as usize),
                len: get_u64(buf)?,
                expected: get_u32(buf)?,
                actual: get_u32(buf)?,
            },
            2 => WireError::WriteFault {
                addr: DbAddr(get_u64(buf)? as usize),
            },
            3 => WireError::TxnAborted(TxnId(get_u64(buf)?)),
            4 => WireError::NotFound(get_string(buf)?),
            5 => WireError::OutOfSpace(get_string(buf)?),
            6 => WireError::InvalidArg(get_string(buf)?),
            7 => WireError::RecoveryFailed(get_string(buf)?),
            8 => WireError::Crashed,
            9 => WireError::Io(get_string(buf)?),
            10 => WireError::NoTxn,
            11 => WireError::TxnAlreadyOpen,
            12 => WireError::ConnectionClosed,
            _ => return Err(bad(format!("unknown error tag {tag}"))),
        })
    }
}

// -------------------------------------------------------------------
// Framing
// -------------------------------------------------------------------

/// XOR-fold checksum over a payload (zero-padded trailing word) — the
/// same cheap parity the system log uses for its frames.
pub fn checksum(payload: &[u8]) -> u32 {
    let mut acc = 0u32;
    let mut chunks = payload.chunks_exact(4);
    for c in &mut chunks {
        acc ^= u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut w = [0u8; 4];
        w[..rem.len()].copy_from_slice(rem);
        acc ^= u32::from_le_bytes(w);
    }
    acc
}

/// Write one frame (`[len][checksum][payload]`) to `w`.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME);
    let mut header = [0u8; 8];
    header[0..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    header[4..8].copy_from_slice(&checksum(payload).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Read one frame from `r`. Returns `Ok(None)` on a clean EOF at a frame
/// boundary (the peer closed the connection); errors on truncation
/// mid-frame, an oversized length, or a checksum mismatch.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>> {
    let mut header = [0u8; 8];
    let mut got = 0usize;
    while got < header.len() {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err(bad("connection closed mid-frame header")),
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(DaliError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(header[0..4].try_into().unwrap()) as usize;
    let sum = u32::from_le_bytes(header[4..8].try_into().unwrap());
    if len > MAX_FRAME {
        return Err(bad(format!("frame of {len} bytes exceeds {MAX_FRAME}")));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)
        .map_err(|e| bad(format!("connection closed mid-frame payload: {e}")))?;
    if checksum(&payload) != sum {
        return Err(bad("frame checksum mismatch"));
    }
    Ok(Some(payload))
}

/// Build one wire frame (`[len][checksum][payload]`) as an owned buffer
/// — the nonblocking server queues these for write-drain instead of
/// writing through a stream.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    debug_assert!(payload.len() <= MAX_FRAME);
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&checksum(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Incremental frame parser for a nonblocking accumulate buffer: returns
/// `Ok(Some((payload, consumed)))` when `buf` starts with a complete
/// valid frame, `Ok(None)` when more bytes are needed, and an error on
/// an oversized length or checksum mismatch (the connection has no
/// trustworthy frame boundary left and must close).
pub fn parse_frame(buf: &[u8]) -> Result<Option<(Vec<u8>, usize)>> {
    if buf.len() < 8 {
        return Ok(None);
    }
    let len = u32::from_le_bytes(buf[0..4].try_into().unwrap()) as usize;
    let sum = u32::from_le_bytes(buf[4..8].try_into().unwrap());
    if len > MAX_FRAME {
        return Err(bad(format!("frame of {len} bytes exceeds {MAX_FRAME}")));
    }
    if buf.len() < 8 + len {
        return Ok(None);
    }
    let payload = buf[8..8 + len].to_vec();
    if checksum(&payload) != sum {
        return Err(bad("frame checksum mismatch"));
    }
    Ok(Some((payload, 8 + len)))
}

/// Encode a request payload into a fresh buffer (framing is write_frame's job).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut payload = BytesMut::with_capacity(64);
    req.encode(&mut payload);
    payload.to_vec()
}

/// Encode a response payload into a fresh buffer.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut payload = BytesMut::with_capacity(64);
    resp.encode(&mut payload);
    payload.to_vec()
}

// ---- primitive helpers (all bounds-checked) ----

fn put_rec(buf: &mut BytesMut, rec: RecId) {
    buf.put_u32_le(rec.table.0);
    buf.put_u32_le(rec.slot.0);
}

fn get_rec(buf: &mut &[u8]) -> Result<RecId> {
    Ok(RecId::new(TableId(get_u32(buf)?), SlotId(get_u32(buf)?)))
}

fn put_blob(buf: &mut BytesMut, data: &[u8]) {
    buf.put_u32_le(data.len() as u32);
    buf.extend_from_slice(data);
}

fn get_blob(buf: &mut &[u8]) -> Result<Vec<u8>> {
    let n = get_u32(buf)? as usize;
    if n > MAX_FRAME {
        return Err(bad(format!("blob of {n} bytes exceeds frame cap")));
    }
    if buf.len() < n {
        return Err(bad(format!("blob truncated: need {n}, have {}", buf.len())));
    }
    let v = buf[..n].to_vec();
    buf.advance(n);
    Ok(v)
}

fn get_string(buf: &mut &[u8]) -> Result<String> {
    String::from_utf8(get_blob(buf)?).map_err(|_| bad("string not utf-8"))
}

fn get_u8(buf: &mut &[u8]) -> Result<u8> {
    if buf.is_empty() {
        return Err(bad("unexpected end of payload"));
    }
    Ok(buf.get_u8())
}

fn get_u32(buf: &mut &[u8]) -> Result<u32> {
    if buf.len() < 4 {
        return Err(bad("unexpected end of payload"));
    }
    Ok(buf.get_u32_le())
}

fn get_u64(buf: &mut &[u8]) -> Result<u64> {
    if buf.len() < 8 {
        return Err(bad("unexpected end of payload"));
    }
    Ok(buf.get_u64_le())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let samples = vec![
            Request::Begin,
            Request::Read {
                rec: RecId::new(TableId(1), SlotId(2)),
            },
            Request::Insert {
                table: TableId(3),
                data: vec![1, 2, 3],
            },
            Request::Update {
                rec: RecId::new(TableId(1), SlotId(2)),
                data: vec![0; 100],
            },
            Request::Delete {
                rec: RecId::new(TableId(9), SlotId(0)),
            },
            Request::LockExclusive {
                rec: RecId::new(TableId(0), SlotId(7)),
            },
            Request::Commit,
            Request::Abort,
            Request::CreateTable {
                name: "accounts".into(),
                rec_size: 100,
                capacity: 1000,
            },
            Request::OpenTable {
                name: "history".into(),
            },
            Request::RecordCount { table: TableId(2) },
            Request::Audit,
            Request::Stats,
            Request::Ping,
            Request::Repair { region: 12345 },
            Request::Health,
            Request::Metrics,
        ];
        for req in samples {
            let mut buf = BytesMut::new();
            req.encode(&mut buf);
            assert_eq!(Request::decode(&buf).unwrap(), req);
            assert_eq!(buf[0], req.tag(), "tag() must match the encoding");
        }
    }

    #[test]
    fn response_round_trips() {
        let samples = vec![
            Response::Ok,
            Response::Began { txn: TxnId(42) },
            Response::Data(vec![9; 100]),
            Response::Inserted {
                rec: RecId::new(TableId(1), SlotId(77)),
            },
            Response::Table { table: TableId(3) },
            Response::Count(12345),
            Response::Audited {
                clean: true,
                regions_checked: 65536,
            },
            Response::Stats(ServerStats {
                commits: 1,
                aborts: 2,
                fsyncs: 3,
                log_flushes: 4,
                durable_commits: 5,
                piggybacked: 6,
                group_followers: 7,
                sessions: 8,
                orphans_rolled_back: 9,
                deferred_drains: 10,
                deferred_coalesced: 11,
                deferred_max_shard_depth: 12,
                deferred_pending: 13,
                audits_run: 14,
                audit_regions: 15,
                audit_bytes_folded: 16,
                audit_ns: 17,
                certify_regions_certified: 18,
                certify_regions_skipped: 19,
                audit_latch_brackets: 20,
                repair_attempted: 21,
                repair_succeeded: 22,
                repair_fell_back: 23,
                repair_bytes_rebuilt: 24,
                certify_parity_groups: 25,
                conns_rejected: 26,
                frames_pipelined: 27,
                read_parks: 28,
                exec_queue_depth: 29,
                exec_queue_max: 30,
                loop_iterations: 31,
                outbound_buffered_max: 32,
                log_segments_active: 33,
                log_segments_retired: 34,
                log_bytes_on_disk: 35,
                redo_threads_used: 36,
                redo_parallel_ns: 37,
            }),
            Response::Repaired(RepairSummary {
                in_place: true,
                regions_rebuilt: 1,
                bytes_rebuilt: 64,
                records_replayed: 0,
            }),
            Response::Repaired(RepairSummary {
                in_place: false,
                regions_rebuilt: 0,
                bytes_rebuilt: 0,
                records_replayed: 42,
            }),
            Response::Err(WireError::LockDenied {
                txn: TxnId(5),
                rec: RecId::new(TableId(1), SlotId(2)),
            }),
            Response::Err(WireError::CorruptionDetected {
                addr: DbAddr(0x40),
                len: 64,
                expected: 0xdead_beef,
                actual: 0x1234_5678,
            }),
            Response::Err(WireError::NoTxn),
            Response::Err(WireError::Crashed),
            Response::Err(WireError::ConnectionClosed),
            Response::Health(HealthReport {
                healthy: true,
                conns_open: 1024,
                exec_queue_depth: 3,
                uptime_ns: 5_000_000_000,
            }),
            Response::Metrics(MetricsReport {
                uptime_ns: 7,
                verbs: vec![
                    VerbMetrics {
                        verb: 13,
                        count: 100,
                        total_ns: 12345,
                        buckets: vec![(10, 60), (11, 39), (20, 1)],
                    },
                    VerbMetrics {
                        verb: 6,
                        count: 1,
                        total_ns: 9,
                        buckets: vec![(3, 1)],
                    },
                ],
            }),
            Response::Metrics(MetricsReport::default()),
        ];
        for resp in samples {
            let mut buf = BytesMut::new();
            resp.encode(&mut buf);
            assert_eq!(Response::decode(&buf).unwrap(), resp);
        }
    }

    #[test]
    fn verb_metrics_quantiles() {
        let v = VerbMetrics {
            verb: 13,
            count: 100,
            total_ns: 0,
            buckets: vec![(10, 50), (12, 49), (20, 1)],
        };
        // p50 lands in the first bucket: upper bound 2^11.
        assert_eq!(v.quantile(0.50), 1 << 11);
        // p99 lands in the second: upper bound 2^13.
        assert_eq!(v.quantile(0.99), 1 << 13);
        // p100 hits the outlier bucket.
        assert_eq!(v.quantile(1.0), 1 << 21);
        assert_eq!(VerbMetrics::default().quantile(0.5), 0);
    }

    #[test]
    fn connection_closed_round_trips_both_ways() {
        let w = WireError::from(&DaliError::ConnectionClosed);
        assert_eq!(w, WireError::ConnectionClosed);
        let back: DaliError = w.into();
        assert!(matches!(back, DaliError::ConnectionClosed));
    }

    #[test]
    fn wire_error_mirrors_dali_error() {
        let e = DaliError::LockDenied {
            txn: TxnId(3),
            rec: RecId::new(TableId(1), SlotId(2)),
        };
        let w = WireError::from(&e);
        let back: DaliError = w.into();
        assert!(matches!(back, DaliError::LockDenied { txn: TxnId(3), .. }));
    }

    #[test]
    fn frame_round_trip_over_cursor() {
        let payload = encode_request(&Request::Ping);
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let mut cursor = &buf[..];
        let got = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(Request::decode(&got).unwrap(), Request::Ping);
        // Clean EOF after the frame.
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn incremental_parser_matches_blocking_reader() {
        let payload = encode_request(&Request::Ping);
        let wire = frame(&payload);
        // Byte-identical to write_frame's output.
        let mut blocking = Vec::new();
        write_frame(&mut blocking, &payload).unwrap();
        assert_eq!(wire, blocking);
        // Every strict prefix needs more bytes; the full frame parses.
        for cut in 0..wire.len() {
            assert!(matches!(parse_frame(&wire[..cut]), Ok(None)), "cut {cut}");
        }
        let (got, consumed) = parse_frame(&wire).unwrap().unwrap();
        assert_eq!(consumed, wire.len());
        assert_eq!(Request::decode(&got).unwrap(), Request::Ping);
        // Two frames back to back: consumed points at the second.
        let mut twice = wire.clone();
        twice.extend_from_slice(&wire);
        let (_, consumed) = parse_frame(&twice).unwrap().unwrap();
        assert!(parse_frame(&twice[consumed..]).unwrap().is_some());
        // Corruption and oversized lengths error.
        let mut bad_frame = wire.clone();
        *bad_frame.last_mut().unwrap() ^= 1;
        assert!(parse_frame(&bad_frame).is_err());
        let mut huge = [0u8; 8];
        huge[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(parse_frame(&huge).is_err());
    }

    #[test]
    fn torn_and_corrupt_frames_error_without_panic() {
        let payload = encode_request(&Request::Begin);
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        // Truncated payload.
        let mut cursor = &buf[..buf.len() - 1];
        assert!(read_frame(&mut cursor).is_err());
        // Truncated header.
        let mut cursor = &buf[..4];
        assert!(read_frame(&mut cursor).is_err());
        // Flipped payload bit → checksum mismatch.
        let mut bad = buf.clone();
        *bad.last_mut().unwrap() ^= 0x40;
        let mut cursor = &bad[..];
        assert!(read_frame(&mut cursor).is_err());
        // Absurd length field → rejected before allocation.
        let mut huge = [0u8; 8];
        huge[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut cursor = &huge[..];
        assert!(read_frame(&mut cursor).is_err());
    }
}
