//! dali-net: the engine over TCP.
//!
//! Turns the embedded engine into a networked database: an event-driven
//! [`DaliServer`] runs readiness loops (epoll, with a portable `poll(2)`
//! fallback) over nonblocking sessions and executes verbs on a bounded
//! pool, a blocking [`DaliClient`] speaks the length-prefixed,
//! checksummed binary protocol in [`protocol`] (with optional frame
//! [`pipelining`](DaliClient::pipeline)), and [`NetTpcbDriver`] re-runs
//! the contended TPC-B workload over N client connections.
//!
//! Design points (DESIGN.md §6 and §10):
//!
//! * **Framing**: `[len][checksum][payload]`, the same defensive idiom as
//!   the WAL's on-disk records — a torn or corrupt frame is a structured
//!   protocol error, never a panic or a mis-parse.
//! * **Structured errors**: engine failures cross the wire as
//!   [`WireError`] and come back out as the [`DaliError`] they started
//!   as, so client retry loops are written exactly like in-process ones.
//!   A connection the server closed surfaces as
//!   [`DaliError::ConnectionClosed`].
//! * **Event-driven sessions**: each connection is a state machine
//!   (read-accumulate → decode → execute → write-drain) owned by an
//!   event loop; pipelined frames overlap in the execution pool and are
//!   answered in receive order, and per-connection budgets
//!   (`net_pipeline_depth`, `net_outbound_budget`) park the read side
//!   instead of buffering without bound. `net_max_conns` caps admission.
//! * **Orphan cleanup**: a dropped connection's open transaction is
//!   rolled back level by level through the engine's ATT rollback,
//!   releasing all its locks.
//! * **Group commit**: with `DaliConfig::with_commit_window`, concurrent
//!   committers from different connections share one fsync (see
//!   `SystemLog::commit_durable`); the [`ServerStats`] verb exposes the
//!   fsync/flush counters the `net_scale` bench reports.
//! * **Observability**: per-verb log₂-bucket latency histograms via the
//!   `Metrics` verb ([`MetricsReport`]), a cheap `Health` probe
//!   ([`HealthReport`]), and loop/queue counters in [`ServerStats`].
//!
//! The pre-event-loop thread-per-connection server survives behind the
//! `legacy-threaded` feature as [`legacy::ThreadedServer`] — the
//! baseline `net_scale` measures connection scaling against.
//!
//! [`DaliError`]: dali_common::DaliError
//! [`DaliError::ConnectionClosed`]: dali_common::DaliError::ConnectionClosed

pub mod client;
pub mod histogram;
#[cfg(feature = "legacy-threaded")]
pub mod legacy;
pub mod poller;
pub mod protocol;
pub mod server;
pub mod tpcb;

pub use client::DaliClient;
pub use histogram::{merge_reports, LatencyHistograms};
pub use protocol::{
    HealthReport, MetricsReport, RepairSummary, Request, Response, ServerStats, VerbMetrics,
    WireError, MAX_FRAME,
};
pub use server::DaliServer;
pub use tpcb::{NetRunStats, NetTpcbDriver};
