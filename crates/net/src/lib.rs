//! dali-net: the engine over TCP.
//!
//! Turns the embedded engine into a networked database: a
//! thread-per-connection [`DaliServer`] maps each connection to a session
//! owning its transactions, a blocking [`DaliClient`] speaks the
//! length-prefixed, checksummed binary protocol in [`protocol`], and
//! [`NetTpcbDriver`] re-runs the contended TPC-B workload over N client
//! connections.
//!
//! Design points (DESIGN.md §6):
//!
//! * **Framing**: `[len][checksum][payload]`, the same defensive idiom as
//!   the WAL's on-disk records — a torn or corrupt frame is a structured
//!   protocol error, never a panic or a mis-parse.
//! * **Structured errors**: engine failures cross the wire as
//!   [`WireError`] and come back out as the [`DaliError`] they started
//!   as, so client retry loops are written exactly like in-process ones.
//! * **Orphan cleanup**: a dropped connection's open transaction is
//!   rolled back level by level through the engine's ATT rollback,
//!   releasing all its locks.
//! * **Group commit**: with `DaliConfig::with_commit_window`, concurrent
//!   committers from different connections share one fsync (see
//!   `SystemLog::commit_durable`); the [`ServerStats`] verb exposes the
//!   fsync/flush counters the `net_scale` bench reports.
//!
//! [`DaliError`]: dali_common::DaliError

pub mod client;
pub mod protocol;
pub mod server;
pub mod tpcb;

pub use client::DaliClient;
pub use protocol::{RepairSummary, Request, Response, ServerStats, WireError, MAX_FRAME};
pub use server::DaliServer;
pub use tpcb::{NetRunStats, NetTpcbDriver};
