//! Readiness polling for the event-driven server: epoll on Linux with a
//! portable `poll(2)` fallback, behind one `Poller` face.
//!
//! Level-triggered on both backends — a socket with unread bytes keeps
//! signalling until drained, which lets the event loop stop reading
//! mid-stream (backpressure parks) without losing the wakeup. Each event
//! worker owns one `Poller`; cross-thread wakeups (a finished execution,
//! shutdown) go through [`Waker`], a nonblocking socketpair whose read
//! end is registered like any other source.
//!
//! The fallback is selected automatically when `epoll_create1` is
//! unavailable, or forced with `DALI_NET_FORCE_POLL=1` (the CI matrix
//! exercises both).

use std::collections::HashMap;
use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

/// Which readiness a registration asks for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    pub read: bool,
    pub write: bool,
}

impl Interest {
    pub const READ: Interest = Interest {
        read: true,
        write: false,
    };
    pub const WRITE: Interest = Interest {
        read: false,
        write: true,
    };
    pub const BOTH: Interest = Interest {
        read: true,
        write: true,
    };
    /// Registered but parked: stays in the fd set, wakes only on hangup.
    pub const NONE: Interest = Interest {
        read: false,
        write: false,
    };
}

/// One readiness event, translated out of the backend's encoding.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    pub readable: bool,
    pub writable: bool,
    /// Peer hangup or error — the session should be torn down after a
    /// final drain attempt.
    pub hangup: bool,
}

enum Backend {
    Epoll {
        epfd: RawFd,
    },
    Poll {
        fds: HashMap<RawFd, (u64, Interest)>,
    },
}

/// A readiness poller owning a set of `(fd, token, interest)`
/// registrations.
pub struct Poller {
    backend: Backend,
}

impl Poller {
    /// Open a poller, preferring epoll unless `DALI_NET_FORCE_POLL=1`.
    pub fn new() -> io::Result<Poller> {
        let force_poll = std::env::var("DALI_NET_FORCE_POLL").is_ok_and(|v| v == "1");
        if !force_poll {
            let epfd = unsafe { libc::epoll_create1(libc::EPOLL_CLOEXEC) };
            if epfd >= 0 {
                return Ok(Poller {
                    backend: Backend::Epoll { epfd },
                });
            }
        }
        Ok(Poller {
            backend: Backend::Poll {
                fds: HashMap::new(),
            },
        })
    }

    /// Backend label for logs and bench output.
    pub fn backend_name(&self) -> &'static str {
        match self.backend {
            Backend::Epoll { .. } => "epoll",
            Backend::Poll { .. } => "poll",
        }
    }

    fn epoll_events(interest: Interest) -> u32 {
        let mut ev = libc::EPOLLRDHUP;
        if interest.read {
            ev |= libc::EPOLLIN;
        }
        if interest.write {
            ev |= libc::EPOLLOUT;
        }
        ev
    }

    fn epoll_ctl(
        epfd: RawFd,
        op: i32,
        fd: RawFd,
        token: u64,
        interest: Interest,
    ) -> io::Result<()> {
        let mut ev = libc::epoll_event {
            events: Self::epoll_events(interest),
            u64: token,
        };
        let rc = unsafe { libc::epoll_ctl(epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Start watching `fd` under `token`.
    pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            Backend::Epoll { epfd } => {
                Self::epoll_ctl(*epfd, libc::EPOLL_CTL_ADD, fd, token, interest)
            }
            Backend::Poll { fds } => {
                fds.insert(fd, (token, interest));
                Ok(())
            }
        }
    }

    /// Change the interest set of a watched `fd`.
    pub fn reregister(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            Backend::Epoll { epfd } => {
                Self::epoll_ctl(*epfd, libc::EPOLL_CTL_MOD, fd, token, interest)
            }
            Backend::Poll { fds } => {
                fds.insert(fd, (token, interest));
                Ok(())
            }
        }
    }

    /// Stop watching `fd`. Safe to call for an fd that is about to close.
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match &mut self.backend {
            Backend::Epoll { epfd } => {
                let rc = unsafe {
                    libc::epoll_ctl(*epfd, libc::EPOLL_CTL_DEL, fd, std::ptr::null_mut())
                };
                if rc < 0 {
                    return Err(io::Error::last_os_error());
                }
                Ok(())
            }
            Backend::Poll { fds } => {
                fds.remove(&fd);
                Ok(())
            }
        }
    }

    /// Block until at least one registered fd is ready (or `timeout`
    /// expires), appending events to `out`. Returns the number appended.
    /// `None` blocks indefinitely.
    pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        let timeout_ms: i32 = match timeout {
            None => -1,
            Some(d) => d.as_millis().min(i32::MAX as u128) as i32,
        };
        match &mut self.backend {
            Backend::Epoll { epfd } => {
                let mut buf = [libc::epoll_event { events: 0, u64: 0 }; 256];
                let n = loop {
                    let rc = unsafe {
                        libc::epoll_wait(*epfd, buf.as_mut_ptr(), buf.len() as i32, timeout_ms)
                    };
                    if rc >= 0 {
                        break rc as usize;
                    }
                    let err = io::Error::last_os_error();
                    if err.kind() != io::ErrorKind::Interrupted {
                        return Err(err);
                    }
                };
                for ev in &buf[..n] {
                    let events = { ev.events };
                    out.push(Event {
                        token: { ev.u64 },
                        readable: events & libc::EPOLLIN != 0,
                        writable: events & libc::EPOLLOUT != 0,
                        hangup: events & (libc::EPOLLERR | libc::EPOLLHUP | libc::EPOLLRDHUP) != 0,
                    });
                }
                Ok(n)
            }
            Backend::Poll { fds } => {
                // Rebuild the pollfd array each wait: O(fds), which is
                // why this is the fallback, not the default.
                let mut pfds: Vec<libc::pollfd> = Vec::with_capacity(fds.len());
                let mut tokens: Vec<u64> = Vec::with_capacity(fds.len());
                for (&fd, &(token, interest)) in fds.iter() {
                    let mut events = 0i16;
                    if interest.read {
                        events |= libc::POLLIN;
                    }
                    if interest.write {
                        events |= libc::POLLOUT;
                    }
                    pfds.push(libc::pollfd {
                        fd,
                        events,
                        revents: 0,
                    });
                    tokens.push(token);
                }
                let n = loop {
                    let rc = unsafe {
                        libc::poll(pfds.as_mut_ptr(), pfds.len() as libc::nfds_t, timeout_ms)
                    };
                    if rc >= 0 {
                        break rc as usize;
                    }
                    let err = io::Error::last_os_error();
                    if err.kind() != io::ErrorKind::Interrupted {
                        return Err(err);
                    }
                };
                if n > 0 {
                    for (pfd, &token) in pfds.iter().zip(&tokens) {
                        if pfd.revents == 0 {
                            continue;
                        }
                        out.push(Event {
                            token,
                            readable: pfd.revents & libc::POLLIN != 0,
                            writable: pfd.revents & libc::POLLOUT != 0,
                            hangup: pfd.revents & (libc::POLLERR | libc::POLLHUP | libc::POLLNVAL)
                                != 0,
                        });
                    }
                }
                Ok(n)
            }
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        if let Backend::Epoll { epfd } = self.backend {
            unsafe { libc::close(epfd) };
        }
    }
}

/// Cross-thread wakeup for an event loop: a nonblocking socketpair whose
/// read end the loop registers like any socket. `wake()` writes one byte
/// (a full pipe means a wakeup is already pending — success either way);
/// the loop calls `drain()` when its waker token fires.
pub struct Waker {
    tx: std::os::unix::net::UnixStream,
    rx: std::os::unix::net::UnixStream,
}

impl Waker {
    pub fn new() -> io::Result<Waker> {
        let (tx, rx) = std::os::unix::net::UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        Ok(Waker { tx, rx })
    }

    /// The fd the owning loop registers for read interest.
    pub fn fd(&self) -> RawFd {
        use std::os::unix::io::AsRawFd;
        self.rx.as_raw_fd()
    }

    /// Wake the owning loop. Callable from any thread.
    pub fn wake(&self) {
        use std::io::Write;
        // WouldBlock means the buffer already holds an undrained wakeup;
        // any other error means the loop is gone — both are fine.
        let _ = (&self.tx).write(&[1]);
    }

    /// Consume all pending wakeups (called by the owning loop).
    pub fn drain(&self) {
        use std::io::Read;
        let mut buf = [0u8; 64];
        while matches!((&self.rx).read(&mut buf), Ok(n) if n > 0) {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    fn readiness_round_trip(mut poller: Poller) {
        let (mut tx, rx) = UnixStream::pair().unwrap();
        rx.set_nonblocking(true).unwrap();
        poller.register(rx.as_raw_fd(), 7, Interest::READ).unwrap();

        let mut events = Vec::new();
        // Nothing ready yet.
        assert_eq!(
            poller
                .wait(&mut events, Some(Duration::from_millis(0)))
                .unwrap(),
            0
        );

        tx.write_all(b"hi").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));

        // Parking to NONE stops read wakeups even with unread data.
        events.clear();
        poller
            .reregister(rx.as_raw_fd(), 7, Interest::NONE)
            .unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(
            !events.iter().any(|e| e.token == 7 && e.readable),
            "parked fd still signalled readable: {events:?}"
        );

        // Unparking re-signals the still-unread data (level-triggered).
        events.clear();
        poller
            .reregister(rx.as_raw_fd(), 7, Interest::READ)
            .unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));

        poller.deregister(rx.as_raw_fd()).unwrap();
    }

    #[test]
    fn epoll_backend_round_trips() {
        let poller = Poller::new().unwrap();
        assert_eq!(poller.backend_name(), "epoll");
        readiness_round_trip(poller);
    }

    #[test]
    fn poll_backend_round_trips() {
        // Construct the fallback directly rather than via the env var
        // (tests in one process share the environment).
        let poller = Poller {
            backend: Backend::Poll {
                fds: HashMap::new(),
            },
        };
        assert_eq!(poller.backend_name(), "poll");
        readiness_round_trip(poller);
    }

    #[test]
    fn hangup_is_reported() {
        for backend in ["epoll", "poll"] {
            let mut poller = if backend == "epoll" {
                Poller::new().unwrap()
            } else {
                Poller {
                    backend: Backend::Poll {
                        fds: HashMap::new(),
                    },
                }
            };
            let (tx, rx) = UnixStream::pair().unwrap();
            poller.register(rx.as_raw_fd(), 1, Interest::READ).unwrap();
            drop(tx);
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            let ev = events
                .iter()
                .find(|e| e.token == 1)
                .unwrap_or_else(|| panic!("{backend}: no event for dropped peer"));
            // Level-triggered close may surface as hangup and/or a final
            // zero-length readable; either lets the loop tear down.
            assert!(ev.hangup || ev.readable, "{backend}: {ev:?}");
        }
    }

    #[test]
    fn waker_wakes_and_drains() {
        let mut poller = Poller::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new().unwrap());
        poller.register(waker.fd(), 99, Interest::READ).unwrap();

        let w2 = waker.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            w2.wake();
            w2.wake(); // coalesces
        });

        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 99 && e.readable));
        waker.drain();
        events.clear();
        assert_eq!(
            poller
                .wait(&mut events, Some(Duration::from_millis(0)))
                .unwrap(),
            0,
            "drained waker still readable"
        );
        t.join().unwrap();
    }
}
