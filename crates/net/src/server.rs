//! The event-driven network front-end: a readiness loop owning
//! nonblocking sessions as explicit state machines, with execution on a
//! bounded worker pool.
//!
//! # Architecture (DESIGN.md §10)
//!
//! ```text
//!            accept                    decode                 execute
//!  listener ───────► event workers ────────────► exec pool ──────────► engine
//!  (worker 0)        (epoll/poll)     Work queue  (bounded)   TxnHandle
//!                       ▲  │ read-accumulate          │
//!                       │  │ write-drain              │ encoded responses
//!                       └──┴──────── waker ◄──────────┘
//! ```
//!
//! * **Event workers** own nonblocking sockets. Each session is a state
//!   machine: *read-accumulate* bytes into a buffer, *decode* complete
//!   frames, hand requests to the exec pool, *write-drain* encoded
//!   responses. Event workers never block on a socket or the engine.
//! * **Exec pool** runs the verbs (which may block: lock waits, fsyncs,
//!   audits). One session is served by at most one exec worker at a
//!   time, so pipelined responses come back in receive order.
//! * **Pipelining**: up to `net_pipeline_depth` decoded-but-unanswered
//!   frames per connection. At the budget the session's read interest is
//!   *parked* — TCP backpressure, not disconnect.
//! * **Outbound budget**: a slow consumer whose queued response bytes
//!   exceed `net_outbound_budget` also parks reads; buffering is bounded
//!   by `budget + one frame`, never unbounded.
//! * **Admission control**: at `net_max_conns` open connections, newly
//!   accepted sockets get a best-effort structured error and close
//!   (counted in [`ServerStats::conns_rejected`]), and the listener's
//!   read interest is parked until a connection closes.
//! * **Orphan rollback**: a dropped connection's open transaction is
//!   aborted through the engine's level-by-level ATT rollback on the
//!   exec pool (never on an event loop), releasing all its locks.
//!   Shutdown drains these cleanup jobs before returning.
//! * **Observability**: per-verb log₂-bucket latency histograms
//!   ([`Request::Metrics`]) measured decode→response (queue wait
//!   included), plus queue-depth/park/loop counters in [`ServerStats`]
//!   and a cheap [`Request::Health`] probe.
//!
//! Protocol errors (garbage frame, bad checksum, unknown tag) still
//! terminate the connection after a best-effort error response — once
//! framing is suspect there is no trustworthy boundary to resume at —
//! but the error frame queues *behind* earlier pipelined responses, so
//! a half-good burst is answered before the close.
//!
//! The previous thread-per-connection server is preserved behind the
//! `legacy-threaded` feature as [`crate::legacy::ThreadedServer`], as
//! the baseline the `net_scale` bench measures against.

use crate::histogram::LatencyHistograms;
use crate::poller::{Interest, Poller, Waker};
use crate::protocol::{
    encode_response, frame, parse_frame, HealthReport, RepairSummary, Request, Response,
    ServerStats, WireError,
};
use dali_common::Result;
use dali_engine::{DaliEngine, TxnHandle};
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Token the event loop's waker registers under.
const WAKER_TOKEN: u64 = u64::MAX;
/// Token worker 0's listener registers under.
const LISTENER_TOKEN: u64 = u64::MAX - 1;

/// Server-side counters, shared by the event-driven server and the
/// legacy threaded one (which leaves the event-loop-specific cells 0).
#[derive(Default)]
pub(crate) struct ServerCounters {
    pub sessions: AtomicU64,
    pub orphans_rolled_back: AtomicU64,
    pub conns_rejected: AtomicU64,
    pub frames_pipelined: AtomicU64,
    pub read_parks: AtomicU64,
    pub exec_queue_depth: AtomicU64,
    pub exec_queue_max: AtomicU64,
    pub loop_iterations: AtomicU64,
    pub outbound_buffered_max: AtomicU64,
}

impl ServerCounters {
    /// Raise a high-watermark cell to at least `v`.
    fn raise_max(cell: &AtomicU64, v: u64) {
        let mut cur = cell.load(Ordering::Relaxed);
        while v > cur {
            match cell.compare_exchange_weak(cur, v, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => break,
                Err(now) => cur = now,
            }
        }
    }
}

/// Execute one *engine* verb against a session's transaction slot.
/// `Stats`/`Health`/`Metrics` are intercepted by the caller (they need
/// server state, not engine state). Shared by both server front-ends so
/// session semantics — one txn per connection, `NoTxn`/`TxnAlreadyOpen`
/// misuse errors, errors leave the txn open — cannot drift.
pub(crate) fn execute_engine_request(
    engine: &DaliEngine,
    txn_slot: &mut Option<TxnHandle>,
    req: Request,
) -> Response {
    match execute_engine_inner(engine, txn_slot, req) {
        Ok(resp) => resp,
        Err(e) => Response::Err(e),
    }
}

fn execute_engine_inner(
    engine: &DaliEngine,
    txn_slot: &mut Option<TxnHandle>,
    req: Request,
) -> std::result::Result<Response, WireError> {
    fn open(txn_slot: &Option<TxnHandle>) -> std::result::Result<&TxnHandle, WireError> {
        txn_slot.as_ref().ok_or(WireError::NoTxn)
    }
    Ok(match req {
        Request::Begin => {
            if txn_slot.is_some() {
                return Err(WireError::TxnAlreadyOpen);
            }
            let txn = engine.begin()?;
            let id = txn.id();
            *txn_slot = Some(txn);
            Response::Began { txn: id }
        }
        Request::Read { rec } => Response::Data(open(txn_slot)?.read_vec(rec)?),
        Request::Insert { table, data } => Response::Inserted {
            rec: open(txn_slot)?.insert(table, &data)?,
        },
        Request::Update { rec, data } => {
            open(txn_slot)?.update(rec, &data)?;
            Response::Ok
        }
        Request::Delete { rec } => {
            open(txn_slot)?.delete(rec)?;
            Response::Ok
        }
        Request::LockExclusive { rec } => {
            open(txn_slot)?.lock_exclusive(rec)?;
            Response::Ok
        }
        Request::Commit => {
            let txn = txn_slot.take().ok_or(WireError::NoTxn)?;
            txn.commit()?;
            Response::Ok
        }
        Request::Abort => {
            let txn = txn_slot.take().ok_or(WireError::NoTxn)?;
            txn.abort()?;
            Response::Ok
        }
        Request::CreateTable {
            name,
            rec_size,
            capacity,
        } => Response::Table {
            table: engine.create_table(&name, rec_size as usize, capacity as usize)?,
        },
        Request::OpenTable { name } => Response::Table {
            table: engine.table(&name)?,
        },
        Request::RecordCount { table } => Response::Count(engine.record_count(table)? as u64),
        Request::Audit => {
            let report = engine.audit()?;
            Response::Audited {
                clean: report.clean(),
                regions_checked: report.regions_checked as u64,
            }
        }
        Request::Ping => Response::Ok,
        Request::Repair { region } => {
            use dali_engine::repair::RepairOutcome;
            match engine.repair(region as usize)? {
                RepairOutcome::RepairedInPlace {
                    regions_rebuilt,
                    bytes_rebuilt,
                } => Response::Repaired(RepairSummary {
                    in_place: true,
                    regions_rebuilt: regions_rebuilt as u64,
                    bytes_rebuilt: bytes_rebuilt as u64,
                    records_replayed: 0,
                }),
                RepairOutcome::RecoveredViaLog {
                    regions_rebuilt,
                    bytes_rebuilt,
                    records_replayed,
                    ..
                } => Response::Repaired(RepairSummary {
                    in_place: false,
                    regions_rebuilt: regions_rebuilt as u64,
                    bytes_rebuilt: bytes_rebuilt as u64,
                    records_replayed: records_replayed as u64,
                }),
            }
        }
        // Server verbs the caller should have intercepted; answering
        // from engine state alone would report zeros, so refuse loudly.
        Request::Stats | Request::Health | Request::Metrics => {
            return Err(WireError::InvalidArg(
                "server verb reached the engine executor".into(),
            ))
        }
    })
}

/// Build the stats snapshot both server front-ends serve.
pub(crate) fn build_server_stats(engine: &DaliEngine, counters: &ServerCounters) -> ServerStats {
    let log = engine.log_stats();
    let deferred = engine.deferred_stats();
    ServerStats {
        commits: engine.stats().commits.load(Ordering::Relaxed),
        aborts: engine.stats().aborts.load(Ordering::Relaxed),
        fsyncs: log.fsyncs,
        log_flushes: log.flushes,
        durable_commits: log.durable_commits,
        piggybacked: log.piggybacked,
        group_followers: log.group_followers,
        sessions: counters.sessions.load(Ordering::Relaxed),
        orphans_rolled_back: counters.orphans_rolled_back.load(Ordering::Relaxed),
        deferred_drains: deferred.drains,
        deferred_coalesced: deferred.coalesced_deltas,
        deferred_max_shard_depth: deferred.max_shard_depth,
        deferred_pending: deferred.pending_deltas,
        audits_run: engine.stats().audits.load(Ordering::Relaxed),
        audit_regions: engine.stats().regions_audited.load(Ordering::Relaxed),
        audit_bytes_folded: engine.stats().bytes_folded.load(Ordering::Relaxed),
        audit_ns: engine.stats().audit_ns.load(Ordering::Relaxed),
        certify_regions_certified: engine
            .stats()
            .certify_regions_certified
            .load(Ordering::Relaxed),
        certify_regions_skipped: engine
            .stats()
            .certify_regions_skipped
            .load(Ordering::Relaxed),
        audit_latch_brackets: engine.stats().audit_latch_brackets.load(Ordering::Relaxed),
        repair_attempted: engine.stats().repair_attempted.load(Ordering::Relaxed),
        repair_succeeded: engine.stats().repair_succeeded.load(Ordering::Relaxed),
        repair_fell_back: engine.stats().repair_fell_back.load(Ordering::Relaxed),
        repair_bytes_rebuilt: engine.stats().repair_bytes_rebuilt.load(Ordering::Relaxed),
        certify_parity_groups: engine.stats().certify_parity_groups.load(Ordering::Relaxed),
        conns_rejected: counters.conns_rejected.load(Ordering::Relaxed),
        frames_pipelined: counters.frames_pipelined.load(Ordering::Relaxed),
        read_parks: counters.read_parks.load(Ordering::Relaxed),
        exec_queue_depth: counters.exec_queue_depth.load(Ordering::Relaxed),
        exec_queue_max: counters.exec_queue_max.load(Ordering::Relaxed),
        loop_iterations: counters.loop_iterations.load(Ordering::Relaxed),
        outbound_buffered_max: counters.outbound_buffered_max.load(Ordering::Relaxed),
        log_segments_active: engine.stats().log_segments_active.load(Ordering::Relaxed),
        log_segments_retired: engine.stats().log_segments_retired.load(Ordering::Relaxed),
        log_bytes_on_disk: engine.stats().log_bytes_on_disk.load(Ordering::Relaxed),
        redo_threads_used: engine.stats().redo_threads_used.load(Ordering::Relaxed),
        redo_parallel_ns: engine.stats().redo_parallel_ns.load(Ordering::Relaxed),
    }
}

// -------------------------------------------------------------------
// Session core: the half of a session shared with the exec pool
// -------------------------------------------------------------------

/// One unit of session work, flowing through a FIFO so responses keep
/// receive order even when protocol errors interleave with requests.
enum Work {
    /// A decoded request: its verb tag, decode timestamp (latency is
    /// decode→response, queue wait included), and body.
    Req {
        tag: u8,
        started: Instant,
        req: Request,
    },
    /// A pre-encoded protocol-error frame; the connection closes after
    /// it flushes (framing is no longer trustworthy).
    ProtocolError(Vec<u8>),
    /// The connection died: abort its open transaction (if any).
    Cleanup,
}

struct CoreState {
    work: VecDeque<Work>,
    /// Encoded response frames ready for the event loop to write-drain.
    resps: Vec<Vec<u8>>,
    /// How many entries appended to `resps` since the last drain answer
    /// a decoded request (protocol-error frames don't count against the
    /// pipeline budget).
    answered: usize,
    /// The close-after-flush flag set by a protocol error.
    close_after_resps: bool,
    txn: Option<TxnHandle>,
    /// True while an exec worker owns this session's FIFO — at most one
    /// at a time, which is what makes pipelined responses ordered.
    exec_scheduled: bool,
    /// The event loop dropped the connection; responses are discarded.
    closed: bool,
    /// Cleanup ran (exactly-once guard for the orphan rollback).
    cleaned: bool,
}

/// The session state shared between its owning event worker and the
/// exec pool.
struct SessionCore {
    conn_id: u64,
    /// Index of the owning event worker (where readiness notifications go).
    worker: usize,
    state: Mutex<CoreState>,
}

impl SessionCore {
    fn new(conn_id: u64, worker: usize) -> SessionCore {
        SessionCore {
            conn_id,
            worker,
            state: Mutex::new(CoreState {
                work: VecDeque::new(),
                resps: Vec::new(),
                answered: 0,
                close_after_resps: false,
                txn: None,
                exec_scheduled: false,
                closed: false,
                cleaned: false,
            }),
        }
    }
}

// -------------------------------------------------------------------
// Shared server state
// -------------------------------------------------------------------

/// New connections and readiness notifications bound for one event
/// worker (paired with that worker's waker).
#[derive(Default)]
struct Inbox {
    new_conns: Vec<(TcpStream, u64)>,
    /// Session tokens with freshly enqueued responses.
    ready: Vec<u64>,
}

struct ExecQueue {
    jobs: Mutex<VecDeque<Arc<SessionCore>>>,
    cv: Condvar,
    stop: AtomicBool,
}

struct Shared {
    engine: DaliEngine,
    counters: ServerCounters,
    histograms: LatencyHistograms,
    stop: AtomicBool,
    start: Instant,
    max_conns: usize,
    pipeline_depth: usize,
    outbound_budget: usize,
    inboxes: Vec<Mutex<Inbox>>,
    wakers: Vec<Waker>,
    exec: ExecQueue,
}

impl Shared {
    /// Hand a session to the exec pool unless an exec worker already
    /// owns its FIFO. Call with the session's state lock *held* (the
    /// flag check must be atomic with the enqueue that set work).
    fn schedule_locked(&self, core: &Arc<SessionCore>, state: &mut CoreState) {
        if !state.exec_scheduled {
            state.exec_scheduled = true;
            self.exec.jobs.lock().unwrap().push_back(Arc::clone(core));
            self.exec.cv.notify_one();
        }
    }

    /// Tell a session's event worker it has responses to drain.
    fn notify_ready(&self, core: &SessionCore) {
        self.inboxes[core.worker]
            .lock()
            .unwrap()
            .ready
            .push(core.conn_id);
        self.wakers[core.worker].wake();
    }

    fn health(&self) -> HealthReport {
        HealthReport {
            healthy: !self.stop.load(Ordering::Acquire) && self.engine.current_lsn().is_ok(),
            conns_open: self.counters.sessions.load(Ordering::Relaxed),
            exec_queue_depth: self.counters.exec_queue_depth.load(Ordering::Relaxed),
            uptime_ns: self.start.elapsed().as_nanos() as u64,
        }
    }
}

// -------------------------------------------------------------------
// Exec pool
// -------------------------------------------------------------------

fn exec_worker(shared: Arc<Shared>) {
    loop {
        let job = {
            let mut q = shared.exec.jobs.lock().unwrap();
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                if shared.exec.stop.load(Ordering::Acquire) {
                    return;
                }
                q = shared.exec.cv.wait(q).unwrap();
            }
        };
        run_session(&shared, &job);
    }
}

/// Drain one session's work FIFO, one item at a time, until empty. The
/// `exec_scheduled` flag guarantees a single worker per session, so
/// responses are pushed in exactly the order frames were decoded.
fn run_session(shared: &Shared, core: &Arc<SessionCore>) {
    loop {
        let item = {
            let mut state = core.state.lock().unwrap();
            match state.work.pop_front() {
                Some(item) => item,
                None => {
                    state.exec_scheduled = false;
                    return;
                }
            }
        };
        match item {
            Work::Req { tag, started, req } => {
                shared
                    .counters
                    .exec_queue_depth
                    .fetch_sub(1, Ordering::Relaxed);
                // Server verbs answer from shared state; engine verbs may
                // block (locks, fsync), so the txn is taken OUT of the
                // session and the state lock released around execution.
                let resp = match req {
                    Request::Stats => {
                        Response::Stats(build_server_stats(&shared.engine, &shared.counters))
                    }
                    Request::Health => Response::Health(shared.health()),
                    Request::Metrics => Response::Metrics(
                        shared
                            .histograms
                            .report(shared.start.elapsed().as_nanos() as u64),
                    ),
                    req => {
                        let mut txn = core.state.lock().unwrap().txn.take();
                        let resp = execute_engine_request(&shared.engine, &mut txn, req);
                        core.state.lock().unwrap().txn = txn;
                        resp
                    }
                };
                let bytes = frame(&encode_response(&resp));
                {
                    let mut state = core.state.lock().unwrap();
                    if !state.closed {
                        state.resps.push(bytes);
                        state.answered += 1;
                    }
                }
                shared
                    .histograms
                    .record(tag, started.elapsed().as_nanos() as u64);
                shared.notify_ready(core);
            }
            Work::ProtocolError(bytes) => {
                let mut state = core.state.lock().unwrap();
                if !state.closed {
                    state.resps.push(bytes);
                    state.close_after_resps = true;
                    drop(state);
                    shared.notify_ready(core);
                }
            }
            Work::Cleanup => {
                let txn = {
                    let mut state = core.state.lock().unwrap();
                    state.cleaned = true;
                    state.txn.take()
                };
                if let Some(txn) = txn {
                    let _ = txn.abort();
                    shared
                        .counters
                        .orphans_rolled_back
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

// -------------------------------------------------------------------
// Event workers
// -------------------------------------------------------------------

/// The loop-owned half of a session: socket, accumulate buffer, write
/// queue, and interest bookkeeping. The state machine: read-accumulate
/// → decode (enqueue to exec) → write-drain, with parks in between.
struct Conn {
    stream: TcpStream,
    core: Arc<SessionCore>,
    /// Unparsed inbound bytes (read-accumulate).
    read_buf: Vec<u8>,
    /// Encoded response frames being drained, front partially written.
    write_bufs: VecDeque<Vec<u8>>,
    write_pos: usize,
    /// Bytes across `write_bufs` not yet written (outbound budget).
    outbound: usize,
    /// Decoded frames not yet answered (pipeline budget).
    pending: usize,
    /// Read interest parked by a budget.
    parked: bool,
    /// Stop parsing/reading: a protocol error poisoned the framing, or
    /// the peer half-closed.
    read_dead: bool,
    /// Close once `write_bufs` drains.
    closing: bool,
    /// Interest currently registered with the poller.
    registered: Interest,
}

impl Conn {
    fn wants(&self) -> Interest {
        Interest {
            read: !self.parked && !self.read_dead && !self.closing,
            write: !self.write_bufs.is_empty(),
        }
    }
}

struct EventWorker {
    id: usize,
    shared: Arc<Shared>,
    poller: Poller,
    conns: HashMap<u64, Conn>,
    /// Worker 0 only: the listener and its accept-pause state.
    listener: Option<TcpListener>,
    listener_parked: bool,
    next_conn_id: Arc<AtomicU64>,
}

impl EventWorker {
    fn run(mut self) {
        let mut events = Vec::with_capacity(512);
        loop {
            events.clear();
            if self.poller.wait(&mut events, None).is_err() {
                break;
            }
            self.shared
                .counters
                .loop_iterations
                .fetch_add(1, Ordering::Relaxed);

            if self.shared.stop.load(Ordering::Acquire) {
                break;
            }

            let mut accept_ready = false;
            let mut touched: Vec<u64> = Vec::new();
            for ev in &events {
                match ev.token {
                    WAKER_TOKEN => self.shared.wakers[self.id].drain(),
                    LISTENER_TOKEN => accept_ready = true,
                    token => {
                        if let Some(conn) = self.conns.get_mut(&token) {
                            if ev.readable && !conn.read_dead && !conn.parked {
                                Self::read_accumulate(&self.shared, conn);
                            }
                            if ev.writable {
                                Self::write_drain(&self.shared, conn);
                            }
                            if ev.hangup && conn.write_bufs.is_empty() {
                                // Peer gone and nothing left to flush.
                                conn.closing = true;
                                conn.read_dead = true;
                            }
                            touched.push(token);
                        }
                    }
                }
            }

            // Inbox: adopt new connections, drain ready sessions.
            let (new_conns, ready) = {
                let mut inbox = self.shared.inboxes[self.id].lock().unwrap();
                (
                    std::mem::take(&mut inbox.new_conns),
                    std::mem::take(&mut inbox.ready),
                )
            };
            for (stream, conn_id) in new_conns {
                self.adopt(stream, conn_id);
                touched.push(conn_id);
            }
            for token in ready {
                if let Some(conn) = self.conns.get_mut(&token) {
                    Self::pump_responses(&self.shared, conn);
                    touched.push(token);
                }
            }

            // Interest upkeep + deferred closes for every touched conn.
            touched.sort_unstable();
            touched.dedup();
            for token in touched {
                self.settle(token);
            }

            if accept_ready {
                self.accept_drain();
            }
            self.maybe_unpark_listener();
        }
        self.teardown();
    }

    /// Register a freshly assigned connection and poll its first bytes.
    fn adopt(&mut self, stream: TcpStream, conn_id: u64) {
        if stream.set_nonblocking(true).is_err() {
            self.shared
                .counters
                .sessions
                .fetch_sub(1, Ordering::Relaxed);
            return;
        }
        let _ = stream.set_nodelay(true);
        if self
            .poller
            .register(stream.as_raw_fd(), conn_id, Interest::READ)
            .is_err()
        {
            self.shared
                .counters
                .sessions
                .fetch_sub(1, Ordering::Relaxed);
            return;
        }
        let conn = Conn {
            stream,
            core: Arc::new(SessionCore::new(conn_id, self.id)),
            read_buf: Vec::new(),
            write_bufs: VecDeque::new(),
            write_pos: 0,
            outbound: 0,
            pending: 0,
            parked: false,
            read_dead: false,
            closing: false,
            registered: Interest::READ,
        };
        self.conns.insert(conn_id, conn);
    }

    /// Read until the socket would block (or a budget parks the read),
    /// decoding complete frames into the session's work FIFO.
    fn read_accumulate(shared: &Arc<Shared>, conn: &mut Conn) {
        let mut scratch = [0u8; 16 * 1024];
        loop {
            match conn.stream.read(&mut scratch) {
                Ok(0) => {
                    conn.read_dead = true;
                    if conn.write_bufs.is_empty() {
                        conn.closing = true;
                    }
                    break;
                }
                Ok(n) => {
                    conn.read_buf.extend_from_slice(&scratch[..n]);
                    Self::decode_frames(shared, conn);
                    if conn.parked || conn.read_dead {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    conn.read_dead = true;
                    conn.closing = true;
                    break;
                }
            }
        }
    }

    /// Decode as many complete frames from the accumulate buffer as the
    /// budgets allow, handing work to the exec pool in one batch.
    fn decode_frames(shared: &Arc<Shared>, conn: &mut Conn) {
        let mut consumed_total = 0usize;
        let mut enqueued = 0u64;
        {
            let mut state = conn.core.state.lock().unwrap();
            loop {
                if conn.pending >= shared.pipeline_depth
                    || conn.outbound > shared.outbound_budget && shared.outbound_budget > 0
                {
                    if !conn.parked {
                        conn.parked = true;
                        shared.counters.read_parks.fetch_add(1, Ordering::Relaxed);
                    }
                    break;
                }
                match parse_frame(&conn.read_buf[consumed_total..]) {
                    Ok(None) => break,
                    Ok(Some((payload, consumed))) => {
                        consumed_total += consumed;
                        match Request::decode(&payload) {
                            Ok(req) => {
                                if conn.pending > 0 {
                                    shared
                                        .counters
                                        .frames_pipelined
                                        .fetch_add(1, Ordering::Relaxed);
                                }
                                conn.pending += 1;
                                enqueued += 1;
                                state.work.push_back(Work::Req {
                                    tag: req.tag(),
                                    started: Instant::now(),
                                    req,
                                });
                            }
                            Err(e) => {
                                let resp = Response::Err(WireError::from(&e));
                                state
                                    .work
                                    .push_back(Work::ProtocolError(frame(&encode_response(&resp))));
                                conn.read_dead = true;
                                break;
                            }
                        }
                    }
                    Err(e) => {
                        let resp = Response::Err(WireError::from(&e));
                        state
                            .work
                            .push_back(Work::ProtocolError(frame(&encode_response(&resp))));
                        conn.read_dead = true;
                        break;
                    }
                }
            }
            // Bump the queue gauge *before* the work becomes visible to
            // the exec pool, or a fast worker's decrement could race
            // ahead of this increment and underflow the gauge.
            if enqueued > 0 {
                let depth = shared
                    .counters
                    .exec_queue_depth
                    .fetch_add(enqueued, Ordering::Relaxed)
                    + enqueued;
                ServerCounters::raise_max(&shared.counters.exec_queue_max, depth);
            }
            if !state.work.is_empty() {
                shared.schedule_locked(&conn.core, &mut state);
            }
        }
        if consumed_total > 0 {
            conn.read_buf.drain(..consumed_total);
        }
    }

    /// Move freshly encoded responses from the session core into the
    /// write queue, then try to drain them to the socket immediately.
    fn pump_responses(shared: &Arc<Shared>, conn: &mut Conn) {
        let (frames, answered, close_after) = {
            let mut state = conn.core.state.lock().unwrap();
            (
                std::mem::take(&mut state.resps),
                std::mem::take(&mut state.answered),
                state.close_after_resps,
            )
        };
        conn.pending = conn.pending.saturating_sub(answered);
        for f in frames {
            conn.outbound += f.len();
            conn.write_bufs.push_back(f);
        }
        ServerCounters::raise_max(&shared.counters.outbound_buffered_max, conn.outbound as u64);
        Self::write_drain(shared, conn);
        if close_after && conn.write_bufs.is_empty() {
            conn.closing = true;
        }
    }

    /// Write queued frames until the socket would block.
    fn write_drain(_shared: &Arc<Shared>, conn: &mut Conn) {
        while let Some(front) = conn.write_bufs.front() {
            match conn.stream.write(&front[conn.write_pos..]) {
                Ok(n) => {
                    conn.write_pos += n;
                    conn.outbound -= n;
                    if conn.write_pos == front.len() {
                        conn.write_bufs.pop_front();
                        conn.write_pos = 0;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    conn.closing = true;
                    conn.read_dead = true;
                    conn.write_bufs.clear();
                    conn.outbound = 0;
                    break;
                }
            }
        }
        if conn.write_bufs.is_empty() {
            let state = conn.core.state.lock().unwrap();
            if state.close_after_resps && state.resps.is_empty() {
                drop(state);
                conn.closing = true;
            }
        }
    }

    /// Re-register interest if it changed; close the connection when the
    /// state machine has nothing left to do with the socket.
    fn settle(&mut self, token: u64) {
        let close = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            // Budgets may have relaxed (responses answered, outbound
            // flushed — whether via pump_responses or a bare writable
            // event): unpark, and re-parse leftover buffered bytes —
            // the kernel will not re-signal data that already sits in
            // our userspace buffer.
            if conn.parked
                && !conn.closing
                && conn.pending < self.shared.pipeline_depth
                && (self.shared.outbound_budget == 0
                    || conn.outbound <= self.shared.outbound_budget)
            {
                conn.parked = false;
                if !conn.read_dead {
                    Self::decode_frames(&self.shared, conn);
                }
            }
            // A dead read side with no queued work, in-flight exec, or
            // unflushed output has nothing left to produce: close.
            if conn.read_dead && !conn.closing && conn.write_bufs.is_empty() {
                let state = conn.core.state.lock().unwrap();
                if state.work.is_empty() && !state.exec_scheduled && state.resps.is_empty() {
                    conn.closing = true;
                }
            }
            if conn.closing && conn.write_bufs.is_empty() {
                true
            } else {
                let want = conn.wants();
                if want != conn.registered
                    && self
                        .poller
                        .reregister(conn.stream.as_raw_fd(), token, want)
                        .is_ok()
                {
                    conn.registered = want;
                }
                false
            }
        };
        if close {
            self.close_conn(token);
        }
    }

    /// Tear one connection down: deregister, drop the socket, and hand
    /// the orphan-rollback job to the exec pool.
    fn close_conn(&mut self, token: u64) {
        let Some(conn) = self.conns.remove(&token) else {
            return;
        };
        let _ = self.poller.deregister(conn.stream.as_raw_fd());
        drop(conn.stream);
        self.shared
            .counters
            .sessions
            .fetch_sub(1, Ordering::Relaxed);
        {
            let mut state = conn.core.state.lock().unwrap();
            state.closed = true;
            // Unexecuted requests answer no one; drop them, keeping the
            // queue-depth gauge honest.
            let dropped = state
                .work
                .iter()
                .filter(|w| matches!(w, Work::Req { .. }))
                .count() as u64;
            if dropped > 0 {
                self.shared
                    .counters
                    .exec_queue_depth
                    .fetch_sub(dropped, Ordering::Relaxed);
            }
            state.work.clear();
            state.resps.clear();
            if !state.cleaned {
                state.work.push_back(Work::Cleanup);
                self.shared.schedule_locked(&conn.core, &mut state);
            }
        }
        // A slot freed: worker 0 may need to resume accepting.
        if self.shared.max_conns > 0 {
            self.shared.wakers[0].wake();
        }
    }

    /// Accept until the listener would block, rejecting past the cap.
    fn accept_drain(&mut self) {
        let n_workers = self.shared.inboxes.len();
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    if self.shared.stop.load(Ordering::Acquire) {
                        continue;
                    }
                    let open = self.shared.counters.sessions.load(Ordering::Relaxed);
                    if self.shared.max_conns > 0 && open as usize >= self.shared.max_conns {
                        Self::reject(&self.shared, stream);
                        continue;
                    }
                    self.shared
                        .counters
                        .sessions
                        .fetch_add(1, Ordering::Relaxed);
                    let conn_id = self.next_conn_id.fetch_add(1, Ordering::Relaxed);
                    let target = (conn_id as usize) % n_workers;
                    if target == self.id {
                        self.adopt(stream, conn_id);
                        self.settle(conn_id);
                    } else {
                        self.shared.inboxes[target]
                            .lock()
                            .unwrap()
                            .new_conns
                            .push((stream, conn_id));
                        self.shared.wakers[target].wake();
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
        // At the cap: park the listener until a connection closes
        // (accept-pause). The kernel backlog queues the overflow.
        if self.shared.max_conns > 0
            && self.shared.counters.sessions.load(Ordering::Relaxed) as usize
                >= self.shared.max_conns
            && !self.listener_parked
        {
            if let Some(listener) = &self.listener {
                if self.poller.deregister(listener.as_raw_fd()).is_ok() {
                    self.listener_parked = true;
                }
            }
        }
    }

    /// Best-effort structured rejection for a connection past the cap.
    fn reject(shared: &Arc<Shared>, stream: TcpStream) {
        shared
            .counters
            .conns_rejected
            .fetch_add(1, Ordering::Relaxed);
        let resp = Response::Err(WireError::OutOfSpace("server at connection limit".into()));
        let _ = stream.set_nonblocking(true);
        let _ = (&stream).write(&frame(&encode_response(&resp)));
        // Dropping the stream closes it; the error frame is advisory.
    }

    fn maybe_unpark_listener(&mut self) {
        if !self.listener_parked {
            return;
        }
        let open = self.shared.counters.sessions.load(Ordering::Relaxed) as usize;
        if self.shared.max_conns == 0 || open < self.shared.max_conns {
            if let Some(listener) = &self.listener {
                if self
                    .poller
                    .register(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READ)
                    .is_ok()
                {
                    self.listener_parked = false;
                }
            }
        }
    }

    /// Shutdown: close every connection, scheduling orphan cleanups on
    /// the exec pool (the server joins the pool after the event workers,
    /// so every rollback completes before `shutdown()` returns).
    fn teardown(&mut self) {
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            self.close_conn(token);
        }
    }
}

// -------------------------------------------------------------------
// The server handle
// -------------------------------------------------------------------

/// A running event-driven server. Dropping (or calling
/// [`shutdown`](Self::shutdown)) parks the listener, disconnects open
/// sessions, drains orphan rollbacks, and joins every worker.
pub struct DaliServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    event_threads: Vec<JoinHandle<()>>,
    exec_threads: Vec<JoinHandle<()>>,
}

impl DaliServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral loopback port)
    /// and start the event workers and exec pool. Worker/budget knobs
    /// come from the engine's [`DaliConfig`](dali_common::DaliConfig)
    /// (`net_event_workers`, `net_exec_workers`, `net_max_conns`,
    /// `net_pipeline_depth`, `net_outbound_budget`).
    pub fn start(engine: DaliEngine, addr: impl ToSocketAddrs) -> Result<DaliServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let config = engine.config();
        let n_event = config.resolved_net_event_workers();
        let n_exec = config.resolved_net_exec_workers();
        let max_conns = config.net_max_conns;
        let pipeline_depth = config.resolved_net_pipeline_depth();
        let outbound_budget = config.net_outbound_budget;

        let mut wakers = Vec::with_capacity(n_event);
        let mut inboxes = Vec::with_capacity(n_event);
        for _ in 0..n_event {
            wakers.push(Waker::new()?);
            inboxes.push(Mutex::new(Inbox::default()));
        }

        let shared = Arc::new(Shared {
            engine,
            counters: ServerCounters::default(),
            histograms: LatencyHistograms::new(),
            stop: AtomicBool::new(false),
            start: Instant::now(),
            max_conns,
            pipeline_depth,
            outbound_budget,
            inboxes,
            wakers,
            exec: ExecQueue {
                jobs: Mutex::new(VecDeque::new()),
                cv: Condvar::new(),
                stop: AtomicBool::new(false),
            },
        });

        let next_conn_id = Arc::new(AtomicU64::new(0));
        let mut event_threads = Vec::with_capacity(n_event);
        for id in 0..n_event {
            let mut poller = Poller::new()?;
            poller.register(shared.wakers[id].fd(), WAKER_TOKEN, Interest::READ)?;
            // Register the *worker's own* listener handle, not the
            // binding-scope one: `listener` is dropped when start()
            // returns and its fd number can be reused, which would
            // leave the poll backend watching an unrelated socket.
            let worker_listener = if id == 0 {
                let clone = listener.try_clone()?;
                poller.register(clone.as_raw_fd(), LISTENER_TOKEN, Interest::READ)?;
                Some(clone)
            } else {
                None
            };
            let worker = EventWorker {
                id,
                shared: Arc::clone(&shared),
                poller,
                conns: HashMap::new(),
                listener: worker_listener,
                listener_parked: false,
                next_conn_id: Arc::clone(&next_conn_id),
            };
            event_threads.push(
                std::thread::Builder::new()
                    .name(format!("dali-net-ev{id}"))
                    .spawn(move || worker.run())?,
            );
        }

        let mut exec_threads = Vec::with_capacity(n_exec);
        for id in 0..n_exec {
            let shared = Arc::clone(&shared);
            exec_threads.push(
                std::thread::Builder::new()
                    .name(format!("dali-net-ex{id}"))
                    .spawn(move || exec_worker(shared))?,
            );
        }

        Ok(DaliServer {
            shared,
            addr,
            event_threads,
            exec_threads,
        })
    }

    /// The bound address (use after binding port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine this server fronts.
    pub fn engine(&self) -> &DaliEngine {
        &self.shared.engine
    }

    /// Which readiness backend the event loops run on ("epoll"/"poll").
    pub fn backend_name(&self) -> &'static str {
        // All workers share one selection path; probe a fresh poller.
        Poller::new().map(|p| p.backend_name()).unwrap_or("poll")
    }

    /// Stop accepting, disconnect open sessions, drain orphan rollbacks,
    /// and join every worker. Idle clients see the connection close;
    /// their open transactions are rolled back through the orphan path
    /// *before* this returns.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        for w in &self.shared.wakers {
            w.wake();
        }
        for h in self.event_threads.drain(..) {
            let _ = h.join();
        }
        // Event workers have enqueued every cleanup job; now let the
        // exec pool drain to empty and exit.
        self.shared.exec.stop.store(true, Ordering::Release);
        self.shared.exec.cv.notify_all();
        for h in self.exec_threads.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for DaliServer {
    fn drop(&mut self) {
        if !self.event_threads.is_empty() || !self.exec_threads.is_empty() {
            self.stop();
        }
    }
}
