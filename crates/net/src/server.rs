//! The network front-end: a thread-per-connection TCP server mapping
//! each connection to a *session* that owns its transactions.
//!
//! Session lifecycle:
//!
//! * A connection may have at most one open transaction (`Begin` …
//!   `Commit`/`Abort`). Data verbs without an open transaction are
//!   rejected with [`WireError::NoTxn`]; a second `Begin` with
//!   [`WireError::TxnAlreadyOpen`].
//! * Engine errors are returned as structured [`WireError`]s and the
//!   session keeps serving — a `LockDenied` is a normal event a client
//!   retry loop handles, exactly like the in-process drivers. A lock
//!   denial (or any error inside a data verb) leaves the transaction
//!   open; the *client* decides whether to abort and retry, mirroring
//!   the in-process `run_txn` loop.
//! * When the connection drops — cleanly or mid-transaction — the
//!   session's open transaction is rolled back through the engine's
//!   level-by-level ATT rollback (`TxnHandle::abort`), which releases
//!   every record lock the orphan held. The rollback count is surfaced
//!   in [`ServerStats::orphans_rolled_back`].
//!
//! Protocol errors (garbage frame, bad checksum, unknown tag) terminate
//! the connection after a best-effort error response: once framing is
//! suspect there is no trustworthy boundary to resume parsing at.

use crate::protocol::{
    encode_response, read_frame, write_frame, RepairSummary, Request, Response, ServerStats,
    WireError,
};
use dali_common::Result;
use dali_engine::{DaliEngine, TxnHandle};
use std::collections::HashMap;
use std::io::BufWriter;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Server-side counters (sessions and orphan rollbacks).
#[derive(Default)]
struct ServerCounters {
    sessions: AtomicU64,
    orphans_rolled_back: AtomicU64,
}

struct Shared {
    engine: DaliEngine,
    counters: ServerCounters,
    stop: AtomicBool,
    /// Live connections, by id: a clone of each session's stream, kept so
    /// shutdown can `Shutdown::Both` sessions parked in `read_frame`
    /// waiting for a client that will never send (an idle client would
    /// otherwise hang the accept thread's session join forever). Sessions
    /// deregister themselves when they finish.
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn_id: AtomicU64,
}

/// A running server. Dropping (or calling [`shutdown`](Self::shutdown))
/// stops the accept loop; in-flight sessions are asked to wind down and
/// joined.
pub struct DaliServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
}

impl DaliServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral loopback port)
    /// and start accepting connections, one service thread each.
    pub fn start(engine: DaliEngine, addr: impl ToSocketAddrs) -> Result<DaliServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            engine,
            counters: ServerCounters::default(),
            stop: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            next_conn_id: AtomicU64::new(0),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::spawn(move || {
            let mut sessions: Vec<JoinHandle<()>> = Vec::new();
            for conn in listener.incoming() {
                if accept_shared.stop.load(Ordering::Acquire) {
                    break;
                }
                match conn {
                    Ok(stream) => {
                        // Register a stream clone *before* spawning the
                        // session, then re-check the stop flag: stop()
                        // sets the flag and *then* sweeps the map, so a
                        // connection that raced past the flag check above
                        // either lands in the map before the sweep (and is
                        // shut down by it) or sees the flag here and is
                        // shut down inline. A connection whose clone fails
                        // would be unreachable from stop(), so drop it
                        // instead of serving it.
                        let conn_id = accept_shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
                        match stream.try_clone() {
                            Ok(clone) => {
                                accept_shared.conns.lock().unwrap().insert(conn_id, clone);
                            }
                            Err(_) => continue,
                        }
                        if accept_shared.stop.load(Ordering::Acquire) {
                            let _ = stream.shutdown(Shutdown::Both);
                            accept_shared.conns.lock().unwrap().remove(&conn_id);
                            break;
                        }
                        let shared = Arc::clone(&accept_shared);
                        sessions.push(std::thread::spawn(move || {
                            shared.counters.sessions.fetch_add(1, Ordering::Relaxed);
                            Session::new(&shared).serve(stream);
                            shared.counters.sessions.fetch_sub(1, Ordering::Relaxed);
                            shared.conns.lock().unwrap().remove(&conn_id);
                        }));
                    }
                    Err(_) => break,
                }
                // Reap finished session threads so a long-lived server
                // does not accumulate handles.
                sessions.retain(|h| !h.is_finished());
            }
            for h in sessions {
                let _ = h.join();
            }
        });
        Ok(DaliServer {
            shared,
            addr,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (use after binding port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine this server fronts.
    pub fn engine(&self) -> &DaliEngine {
        &self.shared.engine
    }

    /// Stop accepting, disconnect open sessions, and join the accept
    /// loop. Sessions parked in a blocking read (an idle client holding
    /// its socket open) see EOF and wind down — their open transactions
    /// are rolled back through the orphan path; clients see the
    /// connection close.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        // Disconnect every live session so none stays parked in
        // `read_frame` waiting on a quiet client — the accept thread
        // joins session threads, so one blocked read would hang the
        // whole shutdown.
        for (_, conn) in self.shared.conns.lock().unwrap().iter() {
            let _ = conn.shutdown(Shutdown::Both);
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for DaliServer {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.stop();
        }
    }
}

/// One connection's state: the engine handle and the connection's open
/// transaction, if any.
struct Session<'a> {
    shared: &'a Shared,
    txn: Option<TxnHandle>,
}

impl<'a> Session<'a> {
    fn new(shared: &'a Shared) -> Session<'a> {
        Session { shared, txn: None }
    }

    /// Serve the connection until EOF, a protocol error, or shutdown.
    fn serve(mut self, stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        let mut reader = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        };
        let mut writer = BufWriter::new(stream);
        loop {
            let payload = match read_frame(&mut reader) {
                Ok(Some(p)) => p,
                // Clean EOF: the client hung up at a frame boundary.
                Ok(None) => break,
                // Torn frame / bad checksum / connection reset: there is
                // no trustworthy frame boundary to resume at.
                Err(e) => {
                    let resp = Response::Err(WireError::from(&e));
                    let _ = write_frame(&mut writer, &encode_response(&resp));
                    break;
                }
            };
            let resp = match Request::decode(&payload) {
                Ok(req) => self.execute(req),
                Err(e) => {
                    let resp = Response::Err(WireError::from(&e));
                    let _ = write_frame(&mut writer, &encode_response(&resp));
                    break;
                }
            };
            if write_frame(&mut writer, &encode_response(&resp)).is_err() {
                break;
            }
        }
        // Orphan cleanup: a transaction left open by a dropped (or
        // misbehaving) connection is rolled back level by level through
        // the engine's ATT rollback, releasing all its locks.
        if let Some(txn) = self.txn.take() {
            let _ = txn.abort();
            self.shared
                .counters
                .orphans_rolled_back
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Execute one request against the session.
    fn execute(&mut self, req: Request) -> Response {
        match self.execute_inner(req) {
            Ok(resp) => resp,
            Err(e) => Response::Err(e),
        }
    }

    fn execute_inner(&mut self, req: Request) -> std::result::Result<Response, WireError> {
        let engine = &self.shared.engine;
        Ok(match req {
            Request::Begin => {
                if self.txn.is_some() {
                    return Err(WireError::TxnAlreadyOpen);
                }
                let txn = engine.begin()?;
                let id = txn.id();
                self.txn = Some(txn);
                Response::Began { txn: id }
            }
            Request::Read { rec } => Response::Data(self.txn()?.read_vec(rec)?),
            Request::Insert { table, data } => Response::Inserted {
                rec: self.txn()?.insert(table, &data)?,
            },
            Request::Update { rec, data } => {
                self.txn()?.update(rec, &data)?;
                Response::Ok
            }
            Request::Delete { rec } => {
                self.txn()?.delete(rec)?;
                Response::Ok
            }
            Request::LockExclusive { rec } => {
                self.txn()?.lock_exclusive(rec)?;
                Response::Ok
            }
            Request::Commit => {
                let txn = self.txn.take().ok_or(WireError::NoTxn)?;
                txn.commit()?;
                Response::Ok
            }
            Request::Abort => {
                let txn = self.txn.take().ok_or(WireError::NoTxn)?;
                txn.abort()?;
                Response::Ok
            }
            Request::CreateTable {
                name,
                rec_size,
                capacity,
            } => Response::Table {
                table: engine.create_table(&name, rec_size as usize, capacity as usize)?,
            },
            Request::OpenTable { name } => Response::Table {
                table: engine.table(&name)?,
            },
            Request::RecordCount { table } => Response::Count(engine.record_count(table)? as u64),
            Request::Audit => {
                let report = engine.audit()?;
                Response::Audited {
                    clean: report.clean(),
                    regions_checked: report.regions_checked as u64,
                }
            }
            Request::Stats => Response::Stats(self.stats()),
            Request::Ping => Response::Ok,
            Request::Repair { region } => {
                use dali_engine::repair::RepairOutcome;
                match engine.repair(region as usize)? {
                    RepairOutcome::RepairedInPlace {
                        regions_rebuilt,
                        bytes_rebuilt,
                    } => Response::Repaired(RepairSummary {
                        in_place: true,
                        regions_rebuilt: regions_rebuilt as u64,
                        bytes_rebuilt: bytes_rebuilt as u64,
                        records_replayed: 0,
                    }),
                    RepairOutcome::RecoveredViaLog {
                        regions_rebuilt,
                        bytes_rebuilt,
                        records_replayed,
                        ..
                    } => Response::Repaired(RepairSummary {
                        in_place: false,
                        regions_rebuilt: regions_rebuilt as u64,
                        bytes_rebuilt: bytes_rebuilt as u64,
                        records_replayed: records_replayed as u64,
                    }),
                }
            }
        })
    }

    /// The session's open transaction, or `NoTxn`.
    fn txn(&self) -> std::result::Result<&TxnHandle, WireError> {
        self.txn.as_ref().ok_or(WireError::NoTxn)
    }

    fn stats(&self) -> ServerStats {
        let engine = &self.shared.engine;
        let log = engine.log_stats();
        let deferred = engine.deferred_stats();
        ServerStats {
            commits: engine.stats().commits.load(Ordering::Relaxed),
            aborts: engine.stats().aborts.load(Ordering::Relaxed),
            fsyncs: log.fsyncs,
            log_flushes: log.flushes,
            durable_commits: log.durable_commits,
            piggybacked: log.piggybacked,
            group_followers: log.group_followers,
            sessions: self.shared.counters.sessions.load(Ordering::Relaxed),
            orphans_rolled_back: self
                .shared
                .counters
                .orphans_rolled_back
                .load(Ordering::Relaxed),
            deferred_drains: deferred.drains,
            deferred_coalesced: deferred.coalesced_deltas,
            deferred_max_shard_depth: deferred.max_shard_depth,
            deferred_pending: deferred.pending_deltas,
            audits_run: engine.stats().audits.load(Ordering::Relaxed),
            audit_regions: engine.stats().regions_audited.load(Ordering::Relaxed),
            audit_bytes_folded: engine.stats().bytes_folded.load(Ordering::Relaxed),
            audit_ns: engine.stats().audit_ns.load(Ordering::Relaxed),
            certify_regions_certified: engine
                .stats()
                .certify_regions_certified
                .load(Ordering::Relaxed),
            certify_regions_skipped: engine
                .stats()
                .certify_regions_skipped
                .load(Ordering::Relaxed),
            audit_latch_brackets: engine.stats().audit_latch_brackets.load(Ordering::Relaxed),
            repair_attempted: engine.stats().repair_attempted.load(Ordering::Relaxed),
            repair_succeeded: engine.stats().repair_succeeded.load(Ordering::Relaxed),
            repair_fell_back: engine.stats().repair_fell_back.load(Ordering::Relaxed),
            repair_bytes_rebuilt: engine.stats().repair_bytes_rebuilt.load(Ordering::Relaxed),
            certify_parity_groups: engine.stats().certify_parity_groups.load(Ordering::Relaxed),
        }
    }
}
