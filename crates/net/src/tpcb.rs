//! Networked TPC-B: the contended driver from `dali-workload` rebuilt on
//! top of [`DaliClient`], so N *connections* (not threads sharing an
//! engine handle) hammer one server.
//!
//! The operation mix, per-worker RNG streams ([`worker_seed`]), retry
//! back-off ([`retry_backoff`]) and history-ring bookkeeping are shared
//! with the in-process contended driver, so for a given `(seed, clients,
//! n_ops)` triple the final balance sums match the in-process run and the
//! TPC-B invariant (sum of account = teller = branch balances) holds —
//! which is exactly what the integration tests assert.

use crate::client::DaliClient;
use dali_common::{DaliError, RecId, Result, TableId};
use dali_workload::records::{
    balance_of, encode_account, encode_branch, encode_history, encode_teller, REC_SIZE,
};
use dali_workload::{retry_backoff, worker_seed, TpcbConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Aggregate result of [`NetTpcbDriver::run_clients`].
#[derive(Clone, Debug)]
pub struct NetRunStats {
    pub clients: usize,
    pub ops: usize,
    pub txns: usize,
    /// Transactions re-run after a lock denial.
    pub retries: usize,
    pub elapsed_secs: f64,
}

impl NetRunStats {
    /// Aggregate operations per wall-clock second.
    pub fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.elapsed_secs
    }
}

/// The TPC-B driver bound to a server address rather than an engine.
pub struct NetTpcbDriver {
    addr: SocketAddr,
    cfg: TpcbConfig,
    history: TableId,
    account_recs: Vec<RecId>,
    teller_recs: Vec<RecId>,
    branch_recs: Vec<RecId>,
    /// Monotonic op counter feeding history record ids across runs.
    op_counter: u64,
    /// FIFO of live history records (circular history, as in-process).
    history_ring: VecDeque<RecId>,
}

impl NetTpcbDriver {
    /// Create and populate the four TPC-B tables over the wire.
    pub fn setup(addr: SocketAddr, cfg: TpcbConfig) -> Result<NetTpcbDriver> {
        let mut c = DaliClient::connect(addr)?;
        let accounts = c.create_table("account", REC_SIZE, cfg.accounts)?;
        let tellers = c.create_table("teller", REC_SIZE, cfg.tellers)?;
        let branches = c.create_table("branch", REC_SIZE, cfg.branches)?;
        let history = c.create_table("history", REC_SIZE, cfg.history_capacity)?;

        let account_recs = populate(&mut c, accounts, cfg.accounts, encode_account)?;
        let teller_recs = populate(&mut c, tellers, cfg.tellers, encode_teller)?;
        let branch_recs = populate(&mut c, branches, cfg.branches, encode_branch)?;
        Ok(NetTpcbDriver {
            addr,
            cfg,
            history,
            account_recs,
            teller_recs,
            branch_recs,
            op_counter: 0,
            history_ring: VecDeque::new(),
        })
    }

    /// The server address this driver targets.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Run `n_ops` operations split across `clients` connections, every
    /// client drawing from the full row ranges (the contended mode):
    /// conflicts and deadlocks are routine and resolved by the same
    /// abort-and-retry loop as the in-process driver, via the structured
    /// [`DaliError::LockDenied`] the server sends back.
    pub fn run_clients(&mut self, clients: usize, n_ops: usize) -> Result<NetRunStats> {
        if clients == 0 {
            return Err(DaliError::InvalidArg("run_clients: zero clients".into()));
        }
        let op_counter = Arc::new(AtomicU64::new(self.op_counter));
        let mut existing: VecDeque<RecId> = std::mem::take(&mut self.history_ring);
        let mut workers = Vec::with_capacity(clients);
        for k in 0..clients {
            let ring_take = existing.len() / (clients - k);
            workers.push(NetWorker {
                client: DaliClient::connect(self.addr)?,
                history: self.history,
                account_recs: self.account_recs.clone(),
                teller_recs: self.teller_recs.clone(),
                branch_recs: self.branch_recs.clone(),
                ops_per_txn: self.cfg.ops_per_txn,
                ring_share: self.cfg.history_capacity / clients,
                rng: StdRng::seed_from_u64(worker_seed(self.cfg.seed, k)),
                ring: existing.drain(..ring_take).collect(),
                op_counter: Arc::clone(&op_counter),
            });
        }

        let start = Instant::now();
        let results: Vec<Result<(NetWorker, usize, usize, usize)>> = std::thread::scope(|s| {
            let handles: Vec<_> = workers
                .into_iter()
                .enumerate()
                .map(|(k, w)| {
                    let ops = n_ops / clients + usize::from(k < n_ops % clients);
                    s.spawn(move || w.run(ops))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
                .collect()
        });
        let elapsed_secs = start.elapsed().as_secs_f64();

        self.op_counter = op_counter.load(Ordering::Relaxed);
        let (mut ops, mut txns, mut retries) = (0usize, 0usize, 0usize);
        let mut err = None;
        for res in results {
            match res {
                Ok((w, o, t, r)) => {
                    self.history_ring.extend(w.ring);
                    ops += o;
                    txns += t;
                    retries += r;
                }
                Err(e) => err = Some(e),
            }
        }
        if let Some(e) = err {
            return Err(e);
        }
        Ok(NetRunStats {
            clients,
            ops,
            txns,
            retries,
            elapsed_secs,
        })
    }

    /// Check the TPC-B invariant over the wire; returns the common sum.
    pub fn verify_invariant(&self) -> Result<i64> {
        let mut c = DaliClient::connect(self.addr)?;
        c.begin()?;
        fn sum(c: &mut DaliClient, recs: &[RecId]) -> Result<i64> {
            let mut s = 0i64;
            for &r in recs {
                s += balance_of(&c.read(r)?);
            }
            Ok(s)
        }
        let sa = sum(&mut c, &self.account_recs)?;
        let st = sum(&mut c, &self.teller_recs)?;
        let sb = sum(&mut c, &self.branch_recs)?;
        c.commit()?;
        if sa != st || st != sb {
            return Err(DaliError::InvalidArg(format!(
                "TPC-B invariant violated: accounts {sa}, tellers {st}, branches {sb}"
            )));
        }
        Ok(sa)
    }
}

/// One connection's worker: the network twin of the in-process contended
/// `Worker` in `dali-workload`.
struct NetWorker {
    client: DaliClient,
    history: TableId,
    account_recs: Vec<RecId>,
    teller_recs: Vec<RecId>,
    branch_recs: Vec<RecId>,
    ops_per_txn: usize,
    ring_share: usize,
    rng: StdRng,
    ring: VecDeque<RecId>,
    op_counter: Arc<AtomicU64>,
}

impl NetWorker {
    /// Run one transaction of `ops` operations; returns the retry count.
    /// A lock denial aborts the server-side transaction and re-runs it
    /// from the same RNG state — the same loop shape as in-process, with
    /// the error arriving over the wire instead of a return value.
    fn run_txn(&mut self, ops: usize) -> Result<usize> {
        let margin = 2 * self.ops_per_txn + 64;
        let mut retries = 0usize;
        loop {
            let rng_snapshot = self.rng.clone();
            self.client.begin()?;
            let mut inserted: Vec<RecId> = Vec::with_capacity(ops);
            let mut drop_front = 0usize;
            let res = (|| -> Result<()> {
                for _ in 0..ops {
                    let a = self.rng.gen_range(0..self.account_recs.len());
                    let t = self.rng.gen_range(0..self.teller_recs.len());
                    let b = self.rng.gen_range(0..self.branch_recs.len());
                    let delta = self.rng.gen_range(-999_999i64..=999_999);
                    for (rec, encode) in [
                        (
                            self.account_recs[a],
                            encode_account as fn(u64, i64) -> Vec<u8>,
                        ),
                        (
                            self.teller_recs[t],
                            encode_teller as fn(u64, i64) -> Vec<u8>,
                        ),
                        (
                            self.branch_recs[b],
                            encode_branch as fn(u64, i64) -> Vec<u8>,
                        ),
                    ] {
                        // Read-for-update: contended workers take the
                        // exclusive lock up front (shared-then-upgrade
                        // deadlocks every time two workers collide).
                        self.client.lock_exclusive(rec)?;
                        let cur = self.client.read(rec)?;
                        let bal = balance_of(&cur);
                        self.client
                            .update(rec, &encode(rec.slot.0 as u64, bal + delta))?;
                    }
                    let op = self.op_counter.fetch_add(1, Ordering::Relaxed);
                    let h = self.client.insert(
                        self.history,
                        &encode_history(op, a as u64, t as u64, b as u64, delta),
                    )?;
                    inserted.push(h);
                    let live = self.ring.len() - drop_front + inserted.len();
                    if live + margin >= self.ring_share && drop_front < self.ring.len() {
                        self.client.delete(self.ring[drop_front])?;
                        drop_front += 1;
                    }
                }
                Ok(())
            })();
            match res {
                Ok(()) => {
                    self.client.commit()?;
                    self.ring.drain(..drop_front);
                    self.ring.extend(inserted);
                    return Ok(retries);
                }
                Err(DaliError::LockDenied { .. }) => {
                    self.client.abort()?;
                    self.rng = rng_snapshot;
                    retries += 1;
                    if retries > 1_000 {
                        return Err(DaliError::InvalidArg(
                            "networked TPC-B client starved: 1000 lock denials".into(),
                        ));
                    }
                    retry_backoff(retries);
                }
                Err(e) => {
                    let _ = self.client.abort();
                    return Err(e);
                }
            }
        }
    }

    /// Run `n` operations in transactions of `ops_per_txn`; returns
    /// `(self, ops, txns, retries)`.
    fn run(mut self, n: usize) -> Result<(NetWorker, usize, usize, usize)> {
        let mut done = 0usize;
        let mut txns = 0usize;
        let mut retries = 0usize;
        while done < n {
            let in_this = self.ops_per_txn.min(n - done);
            retries += self.run_txn(in_this)?;
            txns += 1;
            done += in_this;
        }
        Ok((self, done, txns, retries))
    }
}

/// Populate a table over the wire with `n` zero-balance rows, committing
/// in batches so the server-side local logs stay small.
fn populate(
    client: &mut DaliClient,
    table: TableId,
    n: usize,
    encode: fn(u64, i64) -> Vec<u8>,
) -> Result<Vec<RecId>> {
    let mut recs = Vec::with_capacity(n);
    let mut i = 0usize;
    while i < n {
        client.begin()?;
        let batch_end = (i + 2_000).min(n);
        for k in i..batch_end {
            recs.push(client.insert(table, &encode(k as u64, 0))?);
        }
        client.commit()?;
        i = batch_end;
    }
    Ok(recs)
}
