//! The `legacy-threaded` baseline server still honors the session
//! contract: engine verbs, orphan rollback, and the admin verbs
//! (`Stats`/`Health`/`Metrics`) served through the same shared executor
//! as the event server. Runs only with `--features legacy-threaded`.

#![cfg(feature = "legacy-threaded")]

use dali_common::DaliConfig;
use dali_engine::DaliEngine;
use dali_net::legacy::ThreadedServer;
use dali_net::{DaliClient, Request};
use std::time::{Duration, Instant};

#[test]
fn threaded_baseline_serves_full_session_contract() {
    let dir = dali_testutil::TempDir::new("legacy-threaded");
    let config = DaliConfig::small(dir.path());
    let (engine, _) = DaliEngine::create(config).unwrap();
    let server = ThreadedServer::start(engine, "127.0.0.1:0").unwrap();
    let engine = server.engine().clone();

    let mut client = DaliClient::connect(server.addr()).unwrap();
    let table = client.create_table("t", 16, 64).unwrap();
    client.begin().unwrap();
    let rec = client.insert(table, &[5u8; 16]).unwrap();
    assert_eq!(client.read(rec).unwrap(), vec![5u8; 16]);
    client.commit().unwrap();
    assert_eq!(client.record_count(table).unwrap(), 1);

    // Admin verbs answer through the shared stats builder / histograms.
    let stats = client.stats().unwrap();
    assert_eq!(stats.commits, 1);
    assert_eq!(stats.sessions, 1);
    assert!(client.health().unwrap().healthy);
    let m = client.metrics().unwrap();
    assert_eq!(m.verb(Request::Commit.tag()).unwrap().count, 1);

    // Orphan rollback on disconnect.
    let mut orphan = DaliClient::connect(server.addr()).unwrap();
    orphan.begin().unwrap();
    orphan.insert(table, &[6u8; 16]).unwrap();
    orphan.drop_connection();
    let deadline = Instant::now() + Duration::from_secs(10);
    while client.stats().unwrap().orphans_rolled_back < 1 {
        assert!(Instant::now() < deadline, "orphan never rolled back");
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(engine.record_count(table).unwrap(), 1);

    server.shutdown();
    assert!(engine.audit().unwrap().clean());
}
