//! Strongly typed identifiers.
//!
//! All identifiers are plain newtypes over integers so they are `Copy`,
//! hashable, and free to pass around. The database address space is a flat
//! byte offset into the in-memory database image ([`DbAddr`]); pages are a
//! layout convenience on top of it, mirroring Dali's "only page-based to the
//! extent that it is convenient" design (paper §2).

use std::fmt;

/// A page number within the database image.
///
/// Pages exist for dirty tracking, checkpoint I/O granularity, and the
/// hardware-protection scheme; record data is addressed by [`DbAddr`]
/// directly and may span page boundaries.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId(pub u32);

impl PageId {
    /// Page containing the byte at `addr` for the given page size.
    #[inline]
    pub fn containing(addr: DbAddr, page_size: usize) -> PageId {
        PageId((addr.0 / page_size) as u32)
    }

    /// First byte address of this page.
    #[inline]
    pub fn base(self, page_size: usize) -> DbAddr {
        DbAddr(self.0 as usize * page_size)
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// A flat byte offset into the database image.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DbAddr(pub usize);

impl DbAddr {
    /// Address advanced by `n` bytes.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, n: usize) -> DbAddr {
        DbAddr(self.0 + n)
    }
}

impl fmt::Display for DbAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{:#x}", self.0)
    }
}

/// Transaction identifier, unique for the lifetime of a database (survives
/// restart: recovery resumes the counter past the largest id seen in the log).
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId(pub u64);

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Sequence number of a multi-level operation within its transaction.
///
/// `(TxnId, OpSeq)` uniquely identifies an operation in a history.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct OpSeq(pub u32);

/// Log sequence number: a byte offset into the system log.
///
/// The system log is the concatenation of the stable log file and the
/// in-memory tail, so LSNs are stable across flushes (paper §2.1).
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Lsn(pub u64);

impl Lsn {
    /// The zero LSN (start of the log).
    pub const ZERO: Lsn = Lsn(0);

    /// LSN advanced by `n` bytes.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, n: u64) -> Lsn {
        Lsn(self.0 + n)
    }
}

impl fmt::Display for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lsn:{}", self.0)
    }
}

/// Identifier of a table (heap file) in the catalog.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TableId(pub u32);

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tbl{}", self.0)
    }
}

/// Slot number of a fixed-size record within its heap.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SlotId(pub u32);

/// A record identifier: table plus slot.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RecId {
    pub table: TableId,
    pub slot: SlotId,
}

impl RecId {
    pub fn new(table: TableId, slot: SlotId) -> RecId {
        RecId { table, slot }
    }
}

impl fmt::Display for RecId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.table, self.slot.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_containing_and_base_are_inverse_on_page_starts() {
        let ps = 8192;
        for p in [0u32, 1, 7, 1000] {
            let page = PageId(p);
            assert_eq!(PageId::containing(page.base(ps), ps), page);
        }
    }

    #[test]
    fn page_containing_mid_page() {
        let ps = 4096;
        assert_eq!(PageId::containing(DbAddr(0), ps), PageId(0));
        assert_eq!(PageId::containing(DbAddr(4095), ps), PageId(0));
        assert_eq!(PageId::containing(DbAddr(4096), ps), PageId(1));
        assert_eq!(PageId::containing(DbAddr(12_288 + 17), ps), PageId(3));
    }

    #[test]
    fn lsn_ordering_and_add() {
        assert!(Lsn(5) < Lsn(6));
        assert_eq!(Lsn(5).add(3), Lsn(8));
        assert_eq!(Lsn::ZERO, Lsn(0));
    }

    #[test]
    fn addr_add() {
        assert_eq!(DbAddr(10).add(22), DbAddr(32));
    }

    #[test]
    fn display_formats() {
        assert_eq!(PageId(3).to_string(), "P3");
        assert_eq!(DbAddr(255).to_string(), "@0xff");
        assert_eq!(TxnId(9).to_string(), "T9");
        assert_eq!(RecId::new(TableId(2), SlotId(7)).to_string(), "tbl2:7");
    }
}
