//! Engine configuration and the protection-scheme selector.
//!
//! [`ProtectionScheme`] enumerates the protection levels evaluated in the
//! paper (the rows of Table 2); [`DaliConfig`] carries the knobs used to
//! size the database image, protection regions, and durability behaviour.

use std::path::PathBuf;
use std::time::Duration;

/// Which corruption-protection scheme the engine runs with.
///
/// Each variant corresponds to a row of Table 2 in the paper:
///
/// | Variant | Table 2 row | Direct corruption | Indirect corruption |
/// |---|---|---|---|
/// | `Baseline` | Baseline | none | none |
/// | `DataCodeword` | Data CW | detect (audit) | none |
/// | `ReadPrecheck` | Data CW w/Precheck, *N* byte | detect | prevent |
/// | `ReadLogging` | Data CW w/ReadLog | detect | correct (delete-txn recovery) |
/// | `CwReadLogging` | Data CW w/CW ReadLog | detect | correct (view-consistent) |
/// | `MemoryProtection` | Memory Protection | prevent (mprotect) | unneeded |
/// | `DeferredMaintenance` | *(extension, named in §4.3)* | detect (audit drains shard-by-shard) | none |
///
/// The precheck region size is configured separately
/// ([`DaliConfig::region_size`]) to allow the 64 B / 512 B / 8 K rows and
/// the region-size sweep ablation.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum ProtectionScheme {
    /// No protection at all.
    Baseline,
    /// Maintain codewords on every update; detect direct corruption only
    /// through asynchronous audits (paper §3.2).
    DataCodeword,
    /// Codeword maintenance plus a codeword consistency check on every read
    /// (paper §3.1); prevents transaction-carried corruption.
    ReadPrecheck,
    /// Data Codeword with *deferred maintenance* (named in §4.3): updaters
    /// queue `(region, delta)` pairs in a sharded, coalescing dirty set
    /// instead of touching the codeword table; audits drain each region's
    /// shard under that region's protection latch before checking (no
    /// global quiesce). Trades update-path table writes for drain-time
    /// catch-up.
    DeferredMaintenance,
    /// Codeword maintenance plus logging of the identity of every item read
    /// (paper §4.2); enables delete-transaction corruption recovery.
    ReadLogging,
    /// Read logging that additionally stores the region codeword(s) in each
    /// read log record (paper §4.3 extension); recovery becomes
    /// view-consistent and runs on every restart.
    CwReadLogging,
    /// Hardware protection: mprotect pages read-only, expose them for the
    /// duration of each beginUpdate/endUpdate pair (paper §3, after [21]).
    MemoryProtection,
}

impl ProtectionScheme {
    /// All schemes, in the order they appear in Table 2 (for the 64-byte
    /// region size).
    pub const ALL: [ProtectionScheme; 7] = [
        ProtectionScheme::Baseline,
        ProtectionScheme::DataCodeword,
        ProtectionScheme::DeferredMaintenance,
        ProtectionScheme::ReadPrecheck,
        ProtectionScheme::ReadLogging,
        ProtectionScheme::CwReadLogging,
        ProtectionScheme::MemoryProtection,
    ];

    /// Does the scheme queue codeword deltas for audit-time application
    /// instead of applying them at `endUpdate`?
    #[inline]
    pub fn defers_maintenance(self) -> bool {
        matches!(self, ProtectionScheme::DeferredMaintenance)
    }

    /// Does the scheme maintain a codeword per protection region on every
    /// update?
    #[inline]
    pub fn maintains_codewords(self) -> bool {
        !matches!(
            self,
            ProtectionScheme::Baseline | ProtectionScheme::MemoryProtection
        )
    }

    /// Does the scheme verify the codeword of each region read, before the
    /// read (paper §3.1)?
    #[inline]
    pub fn prechecks_reads(self) -> bool {
        matches!(self, ProtectionScheme::ReadPrecheck)
    }

    /// Does the scheme append read log records to the transaction log?
    #[inline]
    pub fn logs_reads(self) -> bool {
        matches!(
            self,
            ProtectionScheme::ReadLogging | ProtectionScheme::CwReadLogging
        )
    }

    /// Do read log records carry the region codeword(s)?
    #[inline]
    pub fn logs_read_codewords(self) -> bool {
        matches!(self, ProtectionScheme::CwReadLogging)
    }

    /// Does the scheme bracket updates with mprotect calls?
    #[inline]
    pub fn uses_mprotect(self) -> bool {
        matches!(self, ProtectionScheme::MemoryProtection)
    }

    /// Can the scheme drive delete-transaction corruption recovery (needs
    /// read log records)?
    #[inline]
    pub fn supports_delete_txn_recovery(self) -> bool {
        self.logs_reads()
    }

    /// Human-readable label matching the Table 2 row names.
    pub fn label(self, region_size: usize) -> String {
        match self {
            ProtectionScheme::Baseline => "Baseline".to_string(),
            ProtectionScheme::DataCodeword => "Data CW".to_string(),
            ProtectionScheme::DeferredMaintenance => "Data CW (deferred)".to_string(),
            ProtectionScheme::ReadPrecheck => {
                format!("Data CW w/Precheck, {} byte", region_size)
            }
            ProtectionScheme::ReadLogging => "Data CW w/ReadLog".to_string(),
            ProtectionScheme::CwReadLogging => "Data CW w/CW ReadLog".to_string(),
            ProtectionScheme::MemoryProtection => "Memory Protection".to_string(),
        }
    }
}

/// The modulus of the residue codeword algebra: `2^32 - 1`.
///
/// Folding a region as a sum of its 32-bit words modulo `2^32 - 1`
/// (one's-complement / end-around-carry arithmetic, the same family as the
/// Internet checksum) detects every *same-direction* pair of identical
/// bit-column flips that the XOR fold cancels: two `+2^k` perturbations sum
/// to `2^(k+1) != 0 (mod 2^32 - 1)` — including `k = 31`, because
/// `2^32 ≡ 1`, the end-around carry. See DESIGN.md for the algebra's laws
/// and residual blind spots (opposite-direction pairs still cancel).
pub const RESIDUE_MODULUS: u64 = 0xFFFF_FFFF;

/// Which codeword *algebra* folds region contents into a `u32` codeword.
///
/// The paper fixes the algebra to a bitwise XOR of the region's words
/// (§3); this enum makes it pluggable so the detection/overhead trade-off
/// can be measured. Every algebra is a commutative group on `u32`
/// codewords: `combine` is associative and commutative with `identity()`
/// as neutral element and `neg` as inverse, which is exactly what the
/// sharded deferred dirty set's delta coalescing and incremental
/// maintenance rely on.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Default)]
pub enum CodewordAlgebraKind {
    /// Bitwise XOR of the region's 32-bit words (the paper's codeword).
    /// Self-inverse deltas; blind to an even number of identical flips in
    /// one bit column.
    #[default]
    XorFold,
    /// Sum of the region's 32-bit words modulo `2^32 - 1`
    /// ([`RESIDUE_MODULUS`]), canonicalized into `[0, 2^32 - 1)`.
    /// Detects the same-direction paired-flip class XOR misses at
    /// comparable fold cost.
    Residue,
}

impl CodewordAlgebraKind {
    /// Both algebras, XOR first (the paper's default).
    pub const ALL: [CodewordAlgebraKind; 2] =
        [CodewordAlgebraKind::XorFold, CodewordAlgebraKind::Residue];

    /// The codeword of an empty (or all-zero) region.
    #[inline]
    pub fn identity(self) -> u32 {
        0
    }

    /// Combine two codewords / deltas (the group operation). Associative
    /// and commutative for both algebras.
    #[inline]
    pub fn combine(self, a: u32, b: u32) -> u32 {
        match self {
            CodewordAlgebraKind::XorFold => a ^ b,
            CodewordAlgebraKind::Residue => ((a as u64 + b as u64) % RESIDUE_MODULUS) as u32,
        }
    }

    /// The inverse of a codeword under [`combine`](Self::combine):
    /// `combine(a, neg(a)) == identity()`. XOR is self-inverse; the
    /// residue inverse is `M - a` (with `0` fixed, keeping the canonical
    /// range `[0, M)`).
    #[inline]
    pub fn neg(self, a: u32) -> u32 {
        match self {
            CodewordAlgebraKind::XorFold => a,
            CodewordAlgebraKind::Residue => {
                if a == 0 {
                    0
                } else {
                    (RESIDUE_MODULUS - a as u64) as u32
                }
            }
        }
    }

    /// The *directed* delta taking fold(`old`) to fold(`new`):
    /// `combine(fold(old), delta) == fold(new)`. For XOR this is the
    /// symmetric difference (direction-free); for residue the direction
    /// matters — rolling back applies `neg(delta)`, equivalently the delta
    /// computed with the roles swapped.
    #[inline]
    pub fn delta_of_folds(self, old_fold: u32, new_fold: u32) -> u32 {
        self.combine(new_fold, self.neg(old_fold))
    }

    /// On-disk tag byte for checkpoint metadata. Stable across versions.
    #[inline]
    pub fn tag(self) -> u8 {
        match self {
            CodewordAlgebraKind::XorFold => 1,
            CodewordAlgebraKind::Residue => 2,
        }
    }

    /// Inverse of [`tag`](Self::tag); `None` for unknown bytes.
    #[inline]
    pub fn from_tag(tag: u8) -> Option<CodewordAlgebraKind> {
        match tag {
            1 => Some(CodewordAlgebraKind::XorFold),
            2 => Some(CodewordAlgebraKind::Residue),
            _ => None,
        }
    }

    /// Human-readable label for benches and reports.
    pub fn label(self) -> &'static str {
        match self {
            CodewordAlgebraKind::XorFold => "xor-fold",
            CodewordAlgebraKind::Residue => "residue-2^32-1",
        }
    }
}

/// Configuration for opening or creating a database.
#[derive(Clone, Debug)]
pub struct DaliConfig {
    /// Directory holding the stable log, the two checkpoint images, and the
    /// checkpoint anchor.
    pub dir: PathBuf,
    /// Page size in bytes (power of two). Pages are the granularity of
    /// dirty tracking, checkpoint I/O, and mprotect.
    pub page_size: usize,
    /// Database image size in pages.
    pub db_pages: usize,
    /// Protection scheme to run with.
    pub scheme: ProtectionScheme,
    /// Protection-region size in bytes (power of two, multiple of the
    /// codeword word size). Table 2 uses 64, 512, and 8192.
    pub region_size: usize,
    /// Number of protection regions guarded by one protection latch.
    /// `1` gives the paper's latch-per-region; larger values stripe.
    pub regions_per_latch: usize,
    /// fsync the stable log on transaction commit. When false the log is
    /// still written (buffered) at commit, but durability is left to the OS.
    pub sync_commit: bool,
    /// Group-commit window. When non-zero (and `sync_commit` is set), a
    /// committer that finds no fsync already covering its commit record
    /// waits up to this long for neighbours to enqueue theirs, then one
    /// fsync covers the whole batch. Zero keeps the seed behaviour:
    /// fsync immediately, amortized only by durable-LSN piggybacking.
    pub commit_window: Duration,
    /// Audit the whole database after writing a checkpoint and certify it
    /// (paper §4.2). Required for corruption recovery; can be disabled for
    /// microbenchmarks.
    pub audit_on_checkpoint: bool,
    /// Issue real `mprotect` syscalls for the MemoryProtection scheme. When
    /// false only the protection bitmap is maintained (useful on platforms
    /// where mprotect on the arena is unavailable).
    pub mprotect_real: bool,
    /// How long a lock request waits before being denied (deadlock
    /// resolution by timeout).
    pub lock_timeout: Duration,
    /// Number of record-lock table shards (rounded up to a power of
    /// two). `0` = one shard per available CPU. Partitioned workloads
    /// never contend on the lock table either way; sharding keeps
    /// cross-partition workloads from serializing every lock/unlock
    /// through one table mutex.
    pub lock_shards: usize,
    /// `Some(interval)`: blocked lock requests run a wait-for-graph
    /// cycle check every `interval`, so genuine deadlocks abort (the
    /// youngest transaction in the cycle) within milliseconds instead of
    /// burning the full `lock_timeout`. `None`: timeout-only resolution.
    pub deadlock_detect_interval: Option<Duration>,
    /// Capacity hint for the in-memory system-log tail, in bytes.
    pub log_tail_capacity: usize,
    /// Number of deferred-maintenance dirty-set shards (rounded up to a
    /// power of two). `0` = auto: one per available CPU with a floor of
    /// four — dirty-set contention is driven by writer threads, which
    /// may oversubscribe a small host. Ignored unless the scheme defers
    /// maintenance.
    pub deferred_shards: usize,
    /// `Some(interval)`: a background maintenance thread drains the
    /// deferred dirty set every `interval`, bounding how far the
    /// codeword table lags the image. `None`: catch-up happens only at
    /// audits and at the per-shard watermark.
    pub deferred_drain_interval: Option<Duration>,
    /// Per-shard dirty-region high-watermark: an update that leaves its
    /// shard deeper than this drains the shard inline (backpressure when
    /// the background drainer falls behind). `0` = unbounded.
    pub deferred_shard_watermark: usize,
    /// Number of worker threads striping full-image codeword scans —
    /// whole-database audits, checkpoint certification, the startup
    /// codeword-table fold, and post-recovery resync. `0` = auto: one per
    /// available CPU. Each region is still audited under its own
    /// protection latch, so normal processing continues around a parallel
    /// audit exactly as around a serial one; `1` keeps scans serial.
    pub audit_threads: usize,
    /// Checkpoint certification cadence: every `full_certify_every`-th
    /// checkpoint audits the *entire* database (paper §4.2); the
    /// checkpoints in between *delta-certify* only the protection regions
    /// covered by pages dirtied since the image was last written (plus any
    /// regions queued in the deferred dirty set). `0` = every checkpoint
    /// is a full sweep — the paper-faithful mode and the default. Delta
    /// certification cannot see a wild write that lands entirely outside
    /// the dirty footprint, so a corrupt checkpoint can be certified for
    /// at most `full_certify_every - 1` intervals before the next full
    /// sweep catches it (see DESIGN.md); `Audit_SN` only advances on full
    /// sweeps for the same reason. A failed certification or a restart
    /// forces the next sweep full regardless of cadence.
    pub full_certify_every: u32,
    /// Upper bound on the number of consecutive regions audited under one
    /// protection-latch bracket during audit/certification sweeps. `1`
    /// keeps the paper's latch-per-region cadence; larger values amortize
    /// latch traffic (one `with_span` per run instead of one per region)
    /// at the cost of holding writers off a longer span — the bound keeps
    /// writer latency proportional to `audit_latch_run` region folds.
    /// `0` is treated as `1`.
    pub audit_latch_run: usize,
    /// Which algebra folds region contents into codewords — the paper's
    /// XOR fold by default, or the mod-(2^32−1) residue code that also
    /// detects same-direction paired bit-column flips. The algebra is
    /// stamped into checkpoint metadata; recovery rejects an image
    /// certified under a different algebra rather than resync a table
    /// whose certification verdicts it cannot reproduce.
    pub codeword_algebra: CodewordAlgebraKind,
    /// Lay allocation bitmaps out adjacent to their table's data instead
    /// of on separate pages. Dali keeps control information *off* the
    /// data pages (the default, `false`); colocating models a page-based
    /// system and reduces the pages touched per operation — the §5.3
    /// ablation explaining why Hardware Protection fares better on
    /// page-based systems.
    pub colocate_control: bool,
    /// Parity-based online repair: number of protection regions per parity
    /// group. Every group of consecutive regions is XOR-accumulated into a
    /// region-sized parity buffer maintained through the same deferred
    /// path as codewords, letting a corrupted region be *rebuilt in place*
    /// from its siblings instead of replaying checkpoint + WAL. `0`
    /// disables the stripe. Parity rides the codeword update path, so it
    /// is only effective when the scheme maintains codewords (see
    /// [`DaliConfig::resolved_parity_group_size`]). Space overhead is
    /// `1/parity_group_size` of the image.
    pub parity_group_size: usize,
    /// Number of network event-loop (readiness-loop) workers in the
    /// dali-net server. Each worker owns a slice of nonblocking sessions
    /// and multiplexes them through epoll (or `poll(2)` as the portable
    /// fallback). `0` = auto: one per available CPU, capped at four —
    /// event loops do no blocking work, so a handful saturates the NIC
    /// long before the execution pool does.
    pub net_event_workers: usize,
    /// Number of execution-pool workers in the dali-net server. Decoded
    /// requests are executed here so a slow verb (lock wait, audit,
    /// fsync) never stalls an event loop. `0` = auto:
    /// `max(8, 2 × CPUs)` — the floor matters on small hosts, where a
    /// lock holder's commit must always find a free worker even when
    /// every other session is blocked waiting on its locks.
    pub net_exec_workers: usize,
    /// Admission control: maximum concurrently open connections. At the
    /// cap the listener's read interest is parked (accept-pause) after
    /// rejecting the connections already in the backlog with a
    /// structured error; rejects are counted in
    /// `ServerStats::conns_rejected`. `0` = unlimited.
    pub net_max_conns: usize,
    /// Per-connection pipelining budget: maximum decoded-but-unanswered
    /// frames in flight. When a session reaches the budget its socket's
    /// read interest is parked until responses drain — backpressure, not
    /// disconnect. Minimum 1 (a zero is treated as 1).
    pub net_pipeline_depth: usize,
    /// Per-connection outbound-byte budget: when a session's queued
    /// response bytes exceed this, its read interest is parked until the
    /// peer drains below the watermark. Bounds server memory under slow
    /// consumers. `0` = unbounded.
    pub net_outbound_budget: usize,
    /// Capacity at which a system-log segment is sealed and a new one
    /// started. Sealed segments are immutable; once a certified
    /// checkpoint's `CK_end` is past a sealed segment's last byte the
    /// segment can be retired (see [`DaliConfig::log_retire`]), so
    /// together with the checkpoint cadence this bounds the log
    /// directory's size. Records never span segments; a record larger
    /// than a segment gets one to itself.
    pub log_segment_bytes: u64,
    /// Retire (unlink) log segments fully covered by the *older* of the
    /// two ping-pong checkpoint images after every successful
    /// checkpoint. Disable to keep the whole history on disk — e.g. for
    /// prior-state recovery to points before the previous checkpoint, or
    /// for offline log forensics with `logdump`.
    pub log_retire: bool,
    /// Number of worker threads applying physical redo during restart.
    /// Redo is bucketed by `PageId % redo_threads` in a serial
    /// classification scan (per-page ordering preserved), then the
    /// buckets are applied in parallel — the recovered image is
    /// byte-identical to serial replay. `0` = auto: one per available
    /// CPU; `1` keeps replay serial. Corruption-mode recovery is always
    /// serial regardless (its scan is control-flow-dependent).
    pub redo_threads: usize,
}

impl DaliConfig {
    /// A small configuration rooted at `dir`, suitable for tests and
    /// examples: 4 MiB database, 64-byte regions, baseline scheme.
    pub fn small(dir: impl Into<PathBuf>) -> DaliConfig {
        DaliConfig {
            dir: dir.into(),
            page_size: 8192,
            db_pages: 512,
            scheme: ProtectionScheme::Baseline,
            region_size: 64,
            regions_per_latch: 1,
            sync_commit: false,
            commit_window: Duration::ZERO,
            audit_on_checkpoint: true,
            mprotect_real: true,
            lock_timeout: Duration::from_secs(2),
            lock_shards: 0,
            deadlock_detect_interval: Some(Duration::from_millis(5)),
            log_tail_capacity: 4 << 20,
            deferred_shards: 0,
            deferred_drain_interval: Some(Duration::from_millis(25)),
            deferred_shard_watermark: 4096,
            audit_threads: 0,
            full_certify_every: 0,
            audit_latch_run: 64,
            codeword_algebra: CodewordAlgebraKind::XorFold,
            colocate_control: false,
            parity_group_size: 8,
            net_event_workers: 0,
            net_exec_workers: 0,
            net_max_conns: 16384,
            net_pipeline_depth: 64,
            net_outbound_budget: 1 << 20,
            log_segment_bytes: 4 << 20,
            log_retire: true,
            redo_threads: 0,
        }
    }

    /// Total database image size in bytes.
    #[inline]
    pub fn db_bytes(&self) -> usize {
        self.page_size * self.db_pages
    }

    /// Builder-style scheme selection.
    pub fn with_scheme(mut self, scheme: ProtectionScheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// Builder-style region-size selection.
    pub fn with_region_size(mut self, region_size: usize) -> Self {
        self.region_size = region_size;
        self
    }

    /// Builder-style lock-shard-count selection (`0` = auto).
    pub fn with_lock_shards(mut self, lock_shards: usize) -> Self {
        self.lock_shards = lock_shards;
        self
    }

    /// Builder-style group-commit window selection (implies durable
    /// commits: sets `sync_commit` as well, since delaying a commit to
    /// batch fsyncs is meaningless without an fsync to batch).
    pub fn with_commit_window(mut self, window: Duration) -> Self {
        self.commit_window = window;
        if !window.is_zero() {
            self.sync_commit = true;
        }
        self
    }

    /// The effective lock-shard count: `lock_shards`, or one per
    /// available CPU when `0`, rounded up to a power of two.
    pub fn resolved_lock_shards(&self) -> usize {
        let n = if self.lock_shards == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            self.lock_shards
        };
        n.next_power_of_two()
    }

    /// Builder-style deferred-maintenance shard count (`0` = auto).
    pub fn with_deferred_shards(mut self, deferred_shards: usize) -> Self {
        self.deferred_shards = deferred_shards;
        self
    }

    /// Builder-style background drain interval (`None` disables the
    /// maintenance thread).
    pub fn with_deferred_drain_interval(mut self, interval: Option<Duration>) -> Self {
        self.deferred_drain_interval = interval;
        self
    }

    /// Builder-style per-shard dirty-region watermark (`0` = unbounded).
    pub fn with_deferred_watermark(mut self, watermark: usize) -> Self {
        self.deferred_shard_watermark = watermark;
        self
    }

    /// The effective deferred-maintenance shard count: `deferred_shards`,
    /// or (when `0`) one per available CPU with a floor of four, rounded
    /// up to a power of two.
    pub fn resolved_deferred_shards(&self) -> usize {
        let n = if self.deferred_shards == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
                .max(4)
        } else {
            self.deferred_shards
        };
        n.next_power_of_two()
    }

    /// Builder-style audit-scan worker count (`0` = auto, `1` = serial).
    pub fn with_audit_threads(mut self, audit_threads: usize) -> Self {
        self.audit_threads = audit_threads;
        self
    }

    /// Builder-style certification cadence (`0` = every checkpoint runs a
    /// full sweep, the paper-faithful default; `n > 0` = delta-certify,
    /// with a full sweep every `n`-th checkpoint).
    pub fn with_full_certify_every(mut self, every: u32) -> Self {
        self.full_certify_every = every;
        self
    }

    /// Builder-style codeword-algebra selection.
    pub fn with_codeword_algebra(mut self, algebra: CodewordAlgebraKind) -> Self {
        self.codeword_algebra = algebra;
        self
    }

    /// Builder-style audit latch-run bound (`0`/`1` = latch-per-region).
    pub fn with_audit_latch_run(mut self, run: usize) -> Self {
        self.audit_latch_run = run;
        self
    }

    /// Builder-style parity-group-size selection (`0` disables the parity
    /// stripe and with it online repair).
    pub fn with_parity_group_size(mut self, group_size: usize) -> Self {
        self.parity_group_size = group_size;
        self
    }

    /// The effective parity group size: `parity_group_size`, or `0` when
    /// the scheme does not maintain codewords — parity deltas ride the
    /// codeword update path, so without codeword maintenance the stripe
    /// could never be kept current and repair would rebuild garbage.
    #[inline]
    pub fn resolved_parity_group_size(&self) -> usize {
        if self.scheme.maintains_codewords() {
            self.parity_group_size
        } else {
            0
        }
    }

    /// Builder-style event-loop worker count (`0` = auto).
    pub fn with_net_event_workers(mut self, n: usize) -> Self {
        self.net_event_workers = n;
        self
    }

    /// Builder-style execution-pool worker count (`0` = auto).
    pub fn with_net_exec_workers(mut self, n: usize) -> Self {
        self.net_exec_workers = n;
        self
    }

    /// Builder-style connection cap (`0` = unlimited).
    pub fn with_net_max_conns(mut self, n: usize) -> Self {
        self.net_max_conns = n;
        self
    }

    /// Builder-style pipelining budget (`0` is treated as `1`).
    pub fn with_net_pipeline_depth(mut self, n: usize) -> Self {
        self.net_pipeline_depth = n;
        self
    }

    /// Builder-style outbound-byte budget (`0` = unbounded).
    pub fn with_net_outbound_budget(mut self, n: usize) -> Self {
        self.net_outbound_budget = n;
        self
    }

    /// The effective event-loop worker count: `net_event_workers`, or
    /// (when `0`) one per available CPU capped at four.
    pub fn resolved_net_event_workers(&self) -> usize {
        if self.net_event_workers == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
                .min(4)
        } else {
            self.net_event_workers
        }
    }

    /// The effective execution-pool worker count: `net_exec_workers`, or
    /// (when `0`) `max(8, 2 × CPUs)`. The floor of eight guarantees a
    /// lock holder's commit always finds a free worker on small test
    /// hosts even when every other session blocks on its locks.
    pub fn resolved_net_exec_workers(&self) -> usize {
        if self.net_exec_workers == 0 {
            let cpus = std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1);
            (2 * cpus).max(8)
        } else {
            self.net_exec_workers
        }
    }

    /// The effective pipelining budget: `net_pipeline_depth` with `0`
    /// treated as `1` (strict request/response).
    #[inline]
    pub fn resolved_net_pipeline_depth(&self) -> usize {
        self.net_pipeline_depth.max(1)
    }

    /// The effective latch-run bound: `audit_latch_run` with `0` treated
    /// as `1` (latch-per-region).
    #[inline]
    pub fn resolved_audit_latch_run(&self) -> usize {
        self.audit_latch_run.max(1)
    }

    /// The effective audit-scan worker count: `audit_threads`, or one per
    /// available CPU when `0` (no power-of-two rounding — stripes are
    /// contiguous region chunks, not hash buckets).
    pub fn resolved_audit_threads(&self) -> usize {
        if self.audit_threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            self.audit_threads
        }
    }

    /// Builder-style log-segment capacity selection.
    pub fn with_log_segment_bytes(mut self, bytes: u64) -> Self {
        self.log_segment_bytes = bytes;
        self
    }

    /// Builder-style segment-retirement toggle.
    pub fn with_log_retire(mut self, retire: bool) -> Self {
        self.log_retire = retire;
        self
    }

    /// Builder-style restart-redo worker count (`0` = auto, `1` = serial).
    pub fn with_redo_threads(mut self, redo_threads: usize) -> Self {
        self.redo_threads = redo_threads;
        self
    }

    /// The effective restart-redo worker count: `redo_threads`, or one
    /// per available CPU when `0` (no power-of-two rounding — buckets
    /// are `PageId % threads` classes, any count partitions cleanly).
    pub fn resolved_redo_threads(&self) -> usize {
        if self.redo_threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            self.redo_threads
        }
    }

    /// Validate internal consistency; returns a description of the first
    /// problem found.
    pub fn validate(&self) -> std::result::Result<(), String> {
        if !self.page_size.is_power_of_two() || self.page_size < 512 {
            return Err(format!(
                "page_size {} must be a power of two >= 512",
                self.page_size
            ));
        }
        if self.db_pages == 0 {
            return Err("db_pages must be positive".into());
        }
        if !self.region_size.is_power_of_two()
            || self.region_size < crate::align::WORD
            || self.region_size > self.page_size
        {
            return Err(format!(
                "region_size {} must be a power of two in [{}, page_size]",
                self.region_size,
                crate::align::WORD
            ));
        }
        if self.regions_per_latch == 0 || !self.regions_per_latch.is_power_of_two() {
            return Err("regions_per_latch must be a power of two >= 1".into());
        }
        if self.full_certify_every == 1 {
            // `1` would mean "every checkpoint is the Nth" — identical to
            // `0` but ambiguous at call sites; reject it so the two
            // spellings of always-full cannot drift apart.
            return Err("full_certify_every must be 0 (always full) or >= 2".into());
        }
        if self.net_event_workers > 1024 {
            return Err(format!(
                "net_event_workers {} is absurd (max 1024)",
                self.net_event_workers
            ));
        }
        if self.net_exec_workers > 65536 {
            return Err(format!(
                "net_exec_workers {} is absurd (max 65536)",
                self.net_exec_workers
            ));
        }
        if self.log_segment_bytes < 1024 {
            return Err(format!(
                "log_segment_bytes {} must be >= 1024 (a segment must hold \
                 real frames, not just its seal)",
                self.log_segment_bytes
            ));
        }
        if self.redo_threads > 1024 {
            return Err(format!(
                "redo_threads {} is absurd (max 1024)",
                self.redo_threads
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_capabilities_match_table2_semantics() {
        use ProtectionScheme::*;
        assert!(!Baseline.maintains_codewords());
        assert!(!MemoryProtection.maintains_codewords());
        for s in [
            DataCodeword,
            DeferredMaintenance,
            ReadPrecheck,
            ReadLogging,
            CwReadLogging,
        ] {
            assert!(s.maintains_codewords(), "{s:?}");
        }
        assert!(DeferredMaintenance.defers_maintenance());
        assert!(!DataCodeword.defers_maintenance());
        assert!(!DeferredMaintenance.logs_reads());
        assert!(!DeferredMaintenance.prechecks_reads());
        assert!(ReadPrecheck.prechecks_reads());
        assert!(!DataCodeword.prechecks_reads());
        assert!(ReadLogging.logs_reads() && CwReadLogging.logs_reads());
        assert!(!ReadLogging.logs_read_codewords());
        assert!(CwReadLogging.logs_read_codewords());
        assert!(MemoryProtection.uses_mprotect());
        assert!(ReadLogging.supports_delete_txn_recovery());
        assert!(!ReadPrecheck.supports_delete_txn_recovery());
    }

    #[test]
    fn labels_match_paper_rows() {
        use ProtectionScheme::*;
        assert_eq!(Baseline.label(64), "Baseline");
        assert_eq!(DataCodeword.label(64), "Data CW");
        assert_eq!(DeferredMaintenance.label(64), "Data CW (deferred)");
        assert_eq!(ReadPrecheck.label(64), "Data CW w/Precheck, 64 byte");
        assert_eq!(ReadPrecheck.label(8192), "Data CW w/Precheck, 8192 byte");
        assert_eq!(ReadLogging.label(64), "Data CW w/ReadLog");
        assert_eq!(CwReadLogging.label(64), "Data CW w/CW ReadLog");
        assert_eq!(MemoryProtection.label(64), "Memory Protection");
    }

    #[test]
    fn small_config_validates() {
        assert_eq!(DaliConfig::small("/tmp/x").validate(), Ok(()));
    }

    #[test]
    fn validation_rejects_bad_values() {
        let mut c = DaliConfig::small("/tmp/x");
        c.page_size = 1000;
        assert!(c.validate().is_err());
        let mut c = DaliConfig::small("/tmp/x");
        c.region_size = 3;
        assert!(c.validate().is_err());
        let mut c = DaliConfig::small("/tmp/x");
        c.region_size = c.page_size * 2;
        assert!(c.validate().is_err());
        let mut c = DaliConfig::small("/tmp/x");
        c.db_pages = 0;
        assert!(c.validate().is_err());
        let mut c = DaliConfig::small("/tmp/x");
        c.regions_per_latch = 3;
        assert!(c.validate().is_err());
    }

    #[test]
    fn db_bytes_product() {
        let c = DaliConfig::small("/tmp/x");
        assert_eq!(c.db_bytes(), 8192 * 512);
    }

    #[test]
    fn builders_chain() {
        let c = DaliConfig::small("/tmp/x")
            .with_scheme(ProtectionScheme::ReadPrecheck)
            .with_region_size(512)
            .with_lock_shards(6);
        assert_eq!(c.scheme, ProtectionScheme::ReadPrecheck);
        assert_eq!(c.region_size, 512);
        assert_eq!(c.lock_shards, 6);
    }

    #[test]
    fn commit_window_builder_implies_sync_commit() {
        let c = DaliConfig::small("/tmp/x");
        assert!(!c.sync_commit);
        assert_eq!(c.commit_window, Duration::ZERO);
        let c = c.with_commit_window(Duration::from_micros(500));
        assert!(c.sync_commit);
        assert_eq!(c.commit_window, Duration::from_micros(500));
        // A zero window never flips durability on.
        let c = DaliConfig::small("/tmp/x").with_commit_window(Duration::ZERO);
        assert!(!c.sync_commit);
    }

    #[test]
    fn lock_shards_resolve_to_power_of_two() {
        let c = DaliConfig::small("/tmp/x");
        let auto = c.resolved_lock_shards();
        assert!(auto >= 1 && auto.is_power_of_two());
        assert_eq!(c.clone().with_lock_shards(1).resolved_lock_shards(), 1);
        assert_eq!(c.clone().with_lock_shards(6).resolved_lock_shards(), 8);
        assert_eq!(c.with_lock_shards(8).resolved_lock_shards(), 8);
    }

    #[test]
    fn deferred_shards_resolve_with_floor() {
        let c = DaliConfig::small("/tmp/x");
        let auto = c.resolved_deferred_shards();
        assert!(auto >= 4 && auto.is_power_of_two());
        assert_eq!(
            c.clone().with_deferred_shards(1).resolved_deferred_shards(),
            1
        );
        assert_eq!(
            c.clone().with_deferred_shards(6).resolved_deferred_shards(),
            8
        );
        assert_eq!(c.with_deferred_shards(8).resolved_deferred_shards(), 8);
    }

    #[test]
    fn audit_threads_resolve() {
        let c = DaliConfig::small("/tmp/x");
        assert_eq!(c.audit_threads, 0, "auto by default");
        assert!(c.resolved_audit_threads() >= 1);
        assert_eq!(c.clone().with_audit_threads(1).resolved_audit_threads(), 1);
        // No power-of-two rounding: stripes are contiguous chunks.
        assert_eq!(c.with_audit_threads(6).resolved_audit_threads(), 6);
    }

    #[test]
    fn log_and_redo_knobs_resolve_and_validate() {
        let c = DaliConfig::small("/tmp/x");
        assert!(c.log_retire, "retirement on by default");
        assert_eq!(c.redo_threads, 0, "auto by default");
        assert!(c.resolved_redo_threads() >= 1);
        assert_eq!(c.clone().with_redo_threads(1).resolved_redo_threads(), 1);
        assert_eq!(c.clone().with_redo_threads(6).resolved_redo_threads(), 6);
        assert!(c.clone().with_log_segment_bytes(4096).validate().is_ok());
        assert!(c.clone().with_log_segment_bytes(100).validate().is_err());
        assert!(c.clone().with_redo_threads(100_000).validate().is_err());
        assert!(!c.with_log_retire(false).log_retire);
    }

    #[test]
    fn certify_knobs_default_paper_faithful() {
        let c = DaliConfig::small("/tmp/x");
        assert_eq!(c.full_certify_every, 0, "always-full by default");
        assert_eq!(c.audit_latch_run, 64);
        assert_eq!(c.resolved_audit_latch_run(), 64);
        let c = c.with_full_certify_every(8).with_audit_latch_run(0);
        assert_eq!(c.full_certify_every, 8);
        assert_eq!(c.resolved_audit_latch_run(), 1, "0 means per-region");
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn certify_every_one_rejected() {
        let c = DaliConfig::small("/tmp/x").with_full_certify_every(1);
        assert!(c.validate().is_err());
        assert_eq!(
            DaliConfig::small("/tmp/x")
                .with_full_certify_every(2)
                .validate(),
            Ok(())
        );
    }

    #[test]
    fn algebra_group_laws_hold_for_samples() {
        let samples = [
            0u32,
            1,
            2,
            0x8000_0000,
            0xFFFF_FFFE,
            0xFFFF_FFFF, // M itself never appears canonically, but combine tolerates it
            0xDEAD_BEEF,
            0x0101_0101,
        ];
        for kind in CodewordAlgebraKind::ALL {
            for &a in &samples {
                // Identity and inverse laws (on canonical values < M for residue).
                let a_c = kind.combine(a, kind.identity());
                if kind == CodewordAlgebraKind::Residue && a as u64 == RESIDUE_MODULUS {
                    assert_eq!(a_c, 0, "M is congruent to 0");
                } else {
                    assert_eq!(a_c, a, "{kind:?} identity");
                }
                assert_eq!(
                    kind.combine(a_c, kind.neg(a_c)),
                    kind.identity(),
                    "{kind:?} inverse of {a_c:#x}"
                );
                for &b in &samples {
                    assert_eq!(
                        kind.combine(a, b),
                        kind.combine(b, a),
                        "{kind:?} commutativity"
                    );
                    for &c in &samples {
                        assert_eq!(
                            kind.combine(kind.combine(a, b), c),
                            kind.combine(a, kind.combine(b, c)),
                            "{kind:?} associativity"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn algebra_delta_is_directed() {
        for kind in CodewordAlgebraKind::ALL {
            let old = 0x1234_5678u32;
            let new = 0x9ABC_DEF0u32;
            let d = kind.delta_of_folds(old, new);
            assert_eq!(kind.combine(old, d), new, "{kind:?} forward");
            // Rolling back composes the reverse delta, which is neg(d).
            let back = kind.delta_of_folds(new, old);
            assert_eq!(back, kind.neg(d), "{kind:?} reverse = neg");
            assert_eq!(kind.combine(new, back), old, "{kind:?} rollback");
        }
        // XOR deltas are self-inverse; residue deltas generally are not.
        let k = CodewordAlgebraKind::XorFold;
        assert_eq!(k.neg(0xABCD), 0xABCD);
        let r = CodewordAlgebraKind::Residue;
        assert_eq!(r.neg(5), (RESIDUE_MODULUS - 5) as u32);
        assert_eq!(r.neg(0), 0);
    }

    #[test]
    fn residue_combine_wraps_end_around() {
        let r = CodewordAlgebraKind::Residue;
        // (M - 1) + 2 = M + 1 ≡ 1 (mod M): the end-around carry.
        assert_eq!(r.combine((RESIDUE_MODULUS - 1) as u32, 2), 1);
        // Same-direction paired flip in one column is visible: +2^k twice.
        let flip = 1u32 << 20;
        let d = r.combine(flip, flip);
        assert_ne!(d, 0, "residue sees the pair XOR cancels");
        assert_eq!(CodewordAlgebraKind::XorFold.combine(flip, flip), 0);
    }

    #[test]
    fn algebra_tags_round_trip() {
        for kind in CodewordAlgebraKind::ALL {
            assert_eq!(CodewordAlgebraKind::from_tag(kind.tag()), Some(kind));
        }
        assert_eq!(CodewordAlgebraKind::from_tag(0), None);
        assert_eq!(CodewordAlgebraKind::from_tag(3), None);
        assert_ne!(
            CodewordAlgebraKind::XorFold.tag(),
            CodewordAlgebraKind::Residue.tag()
        );
    }

    #[test]
    fn algebra_config_defaults_and_builder() {
        let c = DaliConfig::small("/tmp/x");
        assert_eq!(c.codeword_algebra, CodewordAlgebraKind::XorFold);
        let c = c.with_codeword_algebra(CodewordAlgebraKind::Residue);
        assert_eq!(c.codeword_algebra, CodewordAlgebraKind::Residue);
        assert_eq!(c.validate(), Ok(()));
        assert_eq!(CodewordAlgebraKind::XorFold.label(), "xor-fold");
        assert_eq!(CodewordAlgebraKind::Residue.label(), "residue-2^32-1");
    }

    #[test]
    fn parity_group_size_resolves_by_scheme() {
        let c = DaliConfig::small("/tmp/x");
        assert_eq!(c.parity_group_size, 8, "stripe on by default");
        // Baseline maintains no codewords, so parity resolves off.
        assert_eq!(c.resolved_parity_group_size(), 0);
        let c = c.with_scheme(ProtectionScheme::DataCodeword);
        assert_eq!(c.resolved_parity_group_size(), 8);
        let c = c.with_parity_group_size(4);
        assert_eq!(c.resolved_parity_group_size(), 4);
        let c = c.with_parity_group_size(0);
        assert_eq!(c.resolved_parity_group_size(), 0, "0 disables");
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn net_knobs_default_and_resolve() {
        let c = DaliConfig::small("/tmp/x");
        assert_eq!(c.net_event_workers, 0, "auto by default");
        assert_eq!(c.net_exec_workers, 0, "auto by default");
        assert_eq!(c.net_max_conns, 16384);
        assert_eq!(c.net_pipeline_depth, 64);
        assert_eq!(c.net_outbound_budget, 1 << 20);

        let ev = c.resolved_net_event_workers();
        assert!((1..=4).contains(&ev), "auto event workers {ev}");
        let ex = c.resolved_net_exec_workers();
        assert!(ex >= 8, "exec floor of 8, got {ex}");

        let c = c
            .with_net_event_workers(2)
            .with_net_exec_workers(3)
            .with_net_max_conns(100)
            .with_net_pipeline_depth(0)
            .with_net_outbound_budget(4096);
        assert_eq!(c.resolved_net_event_workers(), 2);
        assert_eq!(c.resolved_net_exec_workers(), 3);
        assert_eq!(c.net_max_conns, 100);
        assert_eq!(c.resolved_net_pipeline_depth(), 1, "0 means strict RPC");
        assert_eq!(c.net_outbound_budget, 4096);
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn net_knob_validation_rejects_absurd_counts() {
        let c = DaliConfig::small("/tmp/x").with_net_event_workers(2000);
        assert!(c.validate().is_err());
        let c = DaliConfig::small("/tmp/x").with_net_exec_workers(100_000);
        assert!(c.validate().is_err());
    }

    #[test]
    fn deferred_builders_chain() {
        let c = DaliConfig::small("/tmp/x")
            .with_deferred_shards(16)
            .with_deferred_drain_interval(Some(Duration::from_millis(1)))
            .with_deferred_watermark(128);
        assert_eq!(c.deferred_shards, 16);
        assert_eq!(c.deferred_drain_interval, Some(Duration::from_millis(1)));
        assert_eq!(c.deferred_shard_watermark, 128);
        let c = c.with_deferred_drain_interval(None);
        assert_eq!(c.deferred_drain_interval, None);
    }
}
