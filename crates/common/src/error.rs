//! Error type shared across the workspace.

use crate::ids::{DbAddr, RecId, TxnId};
use std::fmt;
use std::io;

/// Result alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, DaliError>;

/// Errors surfaced by the storage manager and protection subsystems.
#[derive(Debug)]
pub enum DaliError {
    /// An I/O error from the log, checkpoint, or anchor files.
    Io(io::Error),
    /// A codeword precheck or audit found a region whose computed codeword
    /// does not match the maintained codeword (direct physical corruption,
    /// paper §3).
    CorruptionDetected {
        /// Byte range of the first failing protection region.
        addr: DbAddr,
        len: usize,
        /// The codeword maintained for the region.
        expected: u32,
        /// The codeword computed from the region contents.
        actual: u32,
    },
    /// A write through the prescribed interface targeted a page that the
    /// hardware-protection scheme currently has read-only (simulated trap).
    WriteFault { addr: DbAddr },
    /// The transaction was aborted (by the caller, by deadlock resolution,
    /// or because corruption recovery deleted it).
    TxnAborted(TxnId),
    /// A lock request timed out or would deadlock.
    LockDenied { txn: TxnId, rec: RecId },
    /// A request referenced a table, record, or address that does not exist.
    NotFound(String),
    /// Allocation failed (heap full, arena exhausted, no free slot).
    OutOfSpace(String),
    /// The request was malformed (bad range, wrong record size, misuse of
    /// the update interface such as endUpdate without beginUpdate).
    InvalidArg(String),
    /// The on-disk checkpoint, anchor, or log failed validation during
    /// restart.
    RecoveryFailed(String),
    /// The engine is shut down or has simulated a crash; no further
    /// operations are accepted until restart.
    Crashed,
    /// The network peer closed the connection (cleanly or mid-request).
    /// Surfaced by `dali-net` so clients can distinguish "server went
    /// away" from a local I/O fault and retry against a replica.
    ConnectionClosed,
}

impl fmt::Display for DaliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DaliError::Io(e) => write!(f, "i/o error: {e}"),
            DaliError::CorruptionDetected {
                addr,
                len,
                expected,
                actual,
            } => write!(
                f,
                "corruption detected in region {addr}+{len}: maintained codeword {expected:#010x}, computed {actual:#010x}"
            ),
            DaliError::WriteFault { addr } => {
                write!(f, "write fault: page containing {addr} is protected")
            }
            DaliError::TxnAborted(t) => write!(f, "transaction {t} aborted"),
            DaliError::LockDenied { txn, rec } => {
                write!(f, "lock denied to {txn} on {rec}")
            }
            DaliError::NotFound(s) => write!(f, "not found: {s}"),
            DaliError::OutOfSpace(s) => write!(f, "out of space: {s}"),
            DaliError::InvalidArg(s) => write!(f, "invalid argument: {s}"),
            DaliError::RecoveryFailed(s) => write!(f, "recovery failed: {s}"),
            DaliError::Crashed => write!(f, "database has crashed; restart required"),
            DaliError::ConnectionClosed => write!(f, "connection closed by peer"),
        }
    }
}

impl std::error::Error for DaliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DaliError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for DaliError {
    fn from(e: io::Error) -> Self {
        DaliError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{SlotId, TableId};

    #[test]
    fn display_is_informative() {
        let e = DaliError::CorruptionDetected {
            addr: DbAddr(64),
            len: 64,
            expected: 0xdead_beef,
            actual: 0x1234_5678,
        };
        let s = e.to_string();
        assert!(s.contains("0xdeadbeef"), "{s}");
        assert!(s.contains("@0x40"), "{s}");
    }

    #[test]
    fn io_error_converts_and_sources() {
        let e: DaliError = io::Error::other("boom").into();
        assert!(matches!(e, DaliError::Io(_)));
        use std::error::Error;
        assert!(e.source().is_some());
    }

    #[test]
    fn connection_closed_display() {
        assert_eq!(
            DaliError::ConnectionClosed.to_string(),
            "connection closed by peer"
        );
    }

    #[test]
    fn lock_denied_display() {
        let e = DaliError::LockDenied {
            txn: TxnId(4),
            rec: RecId::new(TableId(1), SlotId(2)),
        };
        assert_eq!(e.to_string(), "lock denied to T4 on tbl1:2");
    }
}
