//! Shared foundation types for the Dali codeword-protection reproduction.
//!
//! This crate has no dependencies and defines the vocabulary used by every
//! other crate in the workspace:
//!
//! * [`ids`] — strongly typed identifiers (pages, transactions, tables,
//!   slots, log sequence numbers, database addresses).
//! * [`error`] — the [`DaliError`](error::DaliError) error type and
//!   [`Result`](error::Result) alias.
//! * [`config`] — engine configuration, including the protection-scheme
//!   selector corresponding to the rows of Table 2 in the paper.
//! * [`align`] — alignment arithmetic used by codeword maintenance
//!   (updates are widened to word boundaries so XOR deltas are computable).
//! * [`crashpoint`] — named crash points fault-injection tests arm to
//!   stop an operation at a durability-critical instant.

pub mod align;
pub mod config;
pub mod crashpoint;
pub mod error;
pub mod ids;

pub use config::{CodewordAlgebraKind, DaliConfig, ProtectionScheme, RESIDUE_MODULUS};
pub use error::{DaliError, Result};
pub use ids::{DbAddr, Lsn, OpSeq, PageId, RecId, SlotId, TableId, TxnId};
