//! Alignment arithmetic.
//!
//! Codewords are the bitwise XOR of the 32-bit words of a protection region
//! (paper §3), so codeword maintenance needs the *word-aligned* span that
//! covers an arbitrary byte-range update: `beginUpdate` widens the undo
//! image to [`widen_to_words`] so that `xor(old span) ^ xor(new span)` is a
//! well-defined codeword delta.

/// The codeword word size in bytes. The paper's implementation XORs machine
/// words; we use 32-bit words so that 64-byte protection regions carry a
/// 4-byte codeword — the ~6% space overhead quoted in §5.3.
pub const WORD: usize = 4;

/// Round `x` down to a multiple of `align` (power of two).
#[inline]
pub fn round_down(x: usize, align: usize) -> usize {
    debug_assert!(align.is_power_of_two());
    x & !(align - 1)
}

/// Round `x` up to a multiple of `align` (power of two).
#[inline]
pub fn round_up(x: usize, align: usize) -> usize {
    debug_assert!(align.is_power_of_two());
    (x + align - 1) & !(align - 1)
}

/// Widen the byte range `[start, start+len)` to word boundaries.
///
/// Returns `(start', len')` with `start' <= start`,
/// `start' + len' >= start + len`, both word-aligned. A zero-length range
/// widens to a zero-length aligned range.
#[inline]
pub fn widen_to_words(start: usize, len: usize) -> (usize, usize) {
    if len == 0 {
        let s = round_down(start, WORD);
        return (s, 0);
    }
    let s = round_down(start, WORD);
    let e = round_up(start + len, WORD);
    (s, e - s)
}

/// True if `x` is a multiple of `align` (power of two).
#[inline]
pub fn is_aligned(x: usize, align: usize) -> bool {
    debug_assert!(align.is_power_of_two());
    x & (align - 1) == 0
}

/// Split the byte range `[start, start+len)` into per-chunk subranges for a
/// chunking of the address space into fixed `chunk` sized pieces (protection
/// regions or pages). Yields `(chunk_index, start_within_range, len)` where
/// `start_within_range` is an absolute address.
pub fn split_by_chunks(
    start: usize,
    len: usize,
    chunk: usize,
) -> impl Iterator<Item = (usize, usize, usize)> {
    debug_assert!(chunk.is_power_of_two());
    let end = start + len;
    let first = start / chunk;
    let last = if len == 0 { first } else { (end - 1) / chunk };
    (first..=last).filter_map(move |ci| {
        let cstart = ci * chunk;
        let cend = cstart + chunk;
        let s = start.max(cstart);
        let e = end.min(cend);
        if e > s {
            Some((ci, s, e - s))
        } else {
            None
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trip_basics() {
        assert_eq!(round_down(7, 4), 4);
        assert_eq!(round_down(8, 4), 8);
        assert_eq!(round_up(7, 4), 8);
        assert_eq!(round_up(8, 4), 8);
        assert_eq!(round_up(0, 4), 0);
    }

    #[test]
    fn widen_covers_and_aligns() {
        let (s, l) = widen_to_words(5, 3);
        assert_eq!((s, l), (4, 4));
        let (s, l) = widen_to_words(4, 4);
        assert_eq!((s, l), (4, 4));
        let (s, l) = widen_to_words(6, 7);
        assert_eq!((s, l), (4, 12));
    }

    #[test]
    fn widen_zero_len() {
        let (s, l) = widen_to_words(7, 0);
        assert_eq!(l, 0);
        assert!(is_aligned(s, WORD));
    }

    #[test]
    fn split_within_one_chunk() {
        let v: Vec<_> = split_by_chunks(10, 20, 64).collect();
        assert_eq!(v, vec![(0, 10, 20)]);
    }

    #[test]
    fn split_across_chunks() {
        let v: Vec<_> = split_by_chunks(60, 10, 64).collect();
        assert_eq!(v, vec![(0, 60, 4), (1, 64, 6)]);
    }

    #[test]
    fn split_exact_boundaries() {
        let v: Vec<_> = split_by_chunks(64, 64, 64).collect();
        assert_eq!(v, vec![(1, 64, 64)]);
    }

    #[test]
    fn split_three_chunks() {
        let v: Vec<_> = split_by_chunks(100, 200, 128).collect();
        assert_eq!(v, vec![(0, 100, 28), (1, 128, 128), (2, 256, 44)]);
    }

    #[test]
    fn split_empty() {
        let v: Vec<_> = split_by_chunks(100, 0, 128).collect();
        assert!(v.is_empty());
    }

    proptest! {
        #[test]
        fn widen_always_covers(start in 0usize..1_000_000, len in 0usize..4096) {
            let (s, l) = widen_to_words(start, len);
            prop_assert!(is_aligned(s, WORD));
            prop_assert!(is_aligned(l, WORD));
            prop_assert!(s <= start);
            prop_assert!(s + l >= start + len);
            // Widening adds less than one word on each side.
            prop_assert!(l < len + 2 * WORD);
        }

        #[test]
        fn split_partitions_range(
            start in 0usize..100_000,
            len in 0usize..10_000,
            chunk_pow in 4u32..14,
        ) {
            let chunk = 1usize << chunk_pow;
            let parts: Vec<_> = split_by_chunks(start, len, chunk).collect();
            // Parts are contiguous, ordered, and cover exactly [start, start+len).
            let total: usize = parts.iter().map(|p| p.2).sum();
            prop_assert_eq!(total, len);
            let mut cursor = start;
            for (ci, s, l) in parts {
                prop_assert_eq!(s, cursor);
                prop_assert_eq!(s / chunk, ci);
                prop_assert_eq!((s + l - 1) / chunk, ci);
                cursor = s + l;
            }
        }
    }
}
