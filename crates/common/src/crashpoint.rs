//! Named crash points for fault-injection tests.
//!
//! A crash point marks a spot where a process crash has interesting
//! durability consequences — e.g. between a `rename` and the directory
//! fsync that makes it durable. Production code calls
//! [`check`] at the spot; the call is a no-op (one relaxed atomic load)
//! unless a test has [`arm`]ed that name, in which case it returns an
//! error that unwinds the operation mid-flight, leaving exactly the
//! on-disk state a crash at that instant would leave. The test then
//! simulates the possible post-crash disk states and drives recovery.
//!
//! The registry is process-global (crash points are reached from
//! arbitrary call depths), so tests using it must not share a process
//! with other armed tests — keep them in their own integration-test
//! binary. Trips are one-shot: a point disarms itself when it fires.

use crate::{DaliError, Result};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Armed points: name → number of checks to let pass before tripping.
static ARMED: Mutex<Option<HashMap<String, u32>>> = Mutex::new(None);
/// Fast path: true only while at least one point is armed.
static ANY_ARMED: AtomicBool = AtomicBool::new(false);

/// Arm `name`: the next [`check`] of that name trips.
pub fn arm(name: &str) {
    arm_after(name, 0);
}

/// Arm `name`, letting `skip` checks pass first (the `skip + 1`-th check
/// trips). Lets a test target one of several occurrences of the same
/// point, e.g. the anchor write after the meta write.
pub fn arm_after(name: &str, skip: u32) {
    let mut armed = ARMED.lock().unwrap();
    armed
        .get_or_insert_with(HashMap::new)
        .insert(name.to_string(), skip);
    ANY_ARMED.store(true, Ordering::Release);
}

/// Disarm every crash point (test cleanup).
pub fn disarm_all() {
    let mut armed = ARMED.lock().unwrap();
    *armed = None;
    ANY_ARMED.store(false, Ordering::Release);
}

/// Declare a crash point. Returns an error if `name` is armed (and
/// disarms it — trips are one-shot); otherwise a no-op.
pub fn check(name: &str) -> Result<()> {
    if !ANY_ARMED.load(Ordering::Acquire) {
        return Ok(());
    }
    let mut armed = ARMED.lock().unwrap();
    let Some(map) = armed.as_mut() else {
        return Ok(());
    };
    match map.get_mut(name) {
        Some(0) => {
            map.remove(name);
            if map.is_empty() {
                *armed = None;
                ANY_ARMED.store(false, Ordering::Release);
            }
            Err(DaliError::Io(std::io::Error::other(format!(
                "crash point tripped: {name}"
            ))))
        }
        Some(skip) => {
            *skip -= 1;
            Ok(())
        }
        None => Ok(()),
    }
}

/// Is `name` currently armed? (Diagnostics/assertions in tests.)
pub fn is_armed(name: &str) -> bool {
    ARMED
        .lock()
        .unwrap()
        .as_ref()
        .is_some_and(|m| m.contains_key(name))
}

/// True if *any* crash point is armed. Tests assert this is false at
/// their boundaries: the registry is process-global, so a point armed by
/// one test and never tripped would fire in whichever test next reaches
/// that name.
pub fn any_armed() -> bool {
    ARMED
        .lock()
        .unwrap()
        .as_ref()
        .is_some_and(|m| !m.is_empty())
}

/// Names currently armed (sorted), for leak diagnostics in tests.
pub fn armed_names() -> Vec<String> {
    let mut names: Vec<String> = ARMED
        .lock()
        .unwrap()
        .as_ref()
        .map(|m| m.keys().cloned().collect())
        .unwrap_or_default();
    names.sort_unstable();
    names
}

/// Alias of [`disarm_all`] for test harnesses that reset the registry at
/// a known boundary.
pub fn reset() {
    disarm_all();
}

/// RAII scope for crash-point tests: constructing it asserts the registry
/// is clean (catching a leak from an *earlier* test), and dropping it
/// disarms everything — even when the test body panics — so an armed
/// point can never leak into the next test in the process.
///
/// ```
/// let _guard = dali_common::crashpoint::ScopedCrashpoints::new();
/// dali_common::crashpoint::arm("atomic_write.post_rename");
/// // ... drive the operation; the guard cleans up on every exit path.
/// ```
pub struct ScopedCrashpoints {
    _private: (),
}

impl ScopedCrashpoints {
    /// Open a scope. Panics if a previous test leaked an armed point.
    #[track_caller]
    pub fn new() -> ScopedCrashpoints {
        let leaked = armed_names();
        assert!(
            leaked.is_empty(),
            "crash points leaked from a previous test: {leaked:?}"
        );
        ScopedCrashpoints { _private: () }
    }
}

impl Default for ScopedCrashpoints {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for ScopedCrashpoints {
    fn drop(&mut self) {
        disarm_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test exercises every transition: the registry is process-global
    // and the crate's unit tests share a process.
    #[test]
    fn arm_trip_skip_disarm() {
        assert!(check("p").is_ok(), "unarmed point is a no-op");

        arm("p");
        assert!(is_armed("p"));
        assert!(check("q").is_ok(), "other names unaffected");
        assert!(check("p").is_err(), "armed point trips");
        assert!(!is_armed("p"), "trip is one-shot");
        assert!(check("p").is_ok());

        arm_after("p", 2);
        assert!(check("p").is_ok());
        assert!(check("p").is_ok());
        assert!(check("p").is_err(), "third check trips");

        arm("p");
        disarm_all();
        assert!(check("p").is_ok());

        // Scoped guard: clean registry on entry, disarms on drop — even
        // across a panic.
        {
            let _g = ScopedCrashpoints::new();
            arm("p");
            assert!(any_armed());
            assert_eq!(armed_names(), vec!["p".to_string()]);
        }
        assert!(!any_armed(), "guard drop disarms");
        assert!(check("p").is_ok());

        let result = std::panic::catch_unwind(|| {
            let _g = ScopedCrashpoints::new();
            arm("p");
            panic!("test body panics");
        });
        assert!(result.is_err());
        assert!(!any_armed(), "guard disarms across a panic");

        arm("p");
        let leaked = std::panic::catch_unwind(ScopedCrashpoints::new);
        assert!(leaked.is_err(), "guard entry catches leaked points");
        reset();
    }
}
